"""Maintained aggregates vs from-scratch recomputation.

The hot paths read aggregates that are *maintained* at mutation time --
run-queue ``total_weight``/``max_vruntime``/``count``, the per-scope
memory-intensity index behind ``CoreSim.effective_rate`` -- instead of
being recomputed by scanning at query time.  These property tests drive
random operation streams and assert, after every single operation, that
each maintained value equals the value a naive scan would produce.

The final class pins ``run_digest`` for every scenario smoke to golden
values captured before the aggregate/columnar-recorder work landed:
bit-identical behaviour is this refactor's contract, so a digest drift
here is a determinism regression (an *intentional* behaviour change
must update the goldens alongside an explanation).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sanitizer import run_digest
from repro.sched.runqueue import CfsRunQueue, O1RunQueue
from repro.sched.task import Task
from repro.sim.backends import backend_names

# operation stream over a bounded task universe:
#   ("push", slot, vruntime, weight) | ("pop",) |
#   ("remove", slot) | ("requeue", slot, new_vruntime)
_vr = st.floats(min_value=0, max_value=1e6, allow_nan=False)
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(0, 15), _vr,
                  st.sampled_from([512, 1024, 2048, 3072])),
        st.tuples(st.just("pop")),
        st.tuples(st.just("remove"), st.integers(0, 15)),
        st.tuples(st.just("requeue"), st.integers(0, 15), _vr),
    ),
    min_size=1,
    max_size=80,
)


def _apply_ops(q, ops):
    """Drive ``q`` with ``ops``; yield the live task set after each op.

    ``slot`` indexes a fixed pool of tasks so removes/requeues target
    tasks that are actually queued (and pushes of a queued slot are
    skipped, matching the queues' no-double-push contract).
    """
    pool = [Task() for _ in range(16)]
    for i, t in enumerate(pool):
        t.weight = 1024
    live: dict[int, Task] = {}  # slot -> task
    for op in ops:
        if op[0] == "push":
            slot = op[1]
            if slot not in live:
                t = pool[slot]
                t.vruntime = op[2]
                t.weight = op[3]
                q.push(t)
                live[slot] = t
        elif op[0] == "pop":
            got = q.pop_min()
            if got is not None:
                live = {s: t for s, t in live.items() if t is not got}
            else:
                assert not live
        elif op[0] == "remove":
            slot = op[1]
            if slot in live:
                q.remove(live.pop(slot))
        else:  # requeue with a changed vruntime (the yield path)
            slot = op[1]
            if slot in live:
                live[slot].vruntime = op[2]
                q.requeue(live[slot])
        yield live


class TestRunQueueAggregates:
    @given(ops=_ops)
    @settings(max_examples=200, deadline=None)
    def test_cfs_aggregates_match_recompute(self, ops):
        q = CfsRunQueue()
        for live in _apply_ops(q, ops):
            tasks = list(live.values())
            assert q.total_weight() == sum(t.weight for t in tasks)
            assert q.count == len(q) == len(tasks)
            if tasks:
                assert q.max_vruntime() == max(t.vruntime for t in tasks)
            else:
                assert q.max_vruntime() == q.min_vruntime

    @given(ops=_ops)
    @settings(max_examples=200, deadline=None)
    def test_o1_aggregates_match_recompute(self, ops):
        q = O1RunQueue()
        for live in _apply_ops(q, ops):
            tasks = list(live.values())
            assert q.total_weight() == sum(t.weight for t in tasks)
            assert q.count == len(q) == len(tasks)


# memory-intensity transitions: (core index, intensity) toggles the
# core between idle and running a task of that intensity
_mem_ops = st.lists(
    st.tuples(st.integers(0, 7),
              st.floats(min_value=0, max_value=1.0, allow_nan=False)),
    min_size=1,
    max_size=60,
)


class TestMemIntensityIndex:
    """The per-scope (cid, intensity) index equals a full-core scan."""

    def _check(self, machine, ops):
        from repro.system import System

        system = System(machine)
        cores = system.cores
        running: dict[int, Task] = {}  # cid -> current task
        for idx, intensity in ops:
            cid = idx % len(cores)
            core = cores[cid]
            if cid in running:
                core._mem_note_off(running.pop(cid))
            else:
                t = Task()
                t.mem_intensity = intensity
                running[cid] = t
                core._mem_note_on(t)
            # recompute every scope's index from the model
            for scope_key, index in system._mem_scope_busy.items():
                expect = sorted(
                    (c.cid, running[c.cid].mem_intensity)
                    for c in cores
                    if c.cid in running
                    and running[c.cid].mem_intensity > 0.0
                    and (
                        scope_key == -1
                        or c.hw.numa_node == scope_key
                    )
                )
                assert index == expect

    @given(ops=_mem_ops)
    @settings(max_examples=100, deadline=None)
    def test_machine_scope_index(self, ops):
        from repro.topology import presets

        self._check(presets.tigerton(), ops)

    @given(ops=_mem_ops)
    @settings(max_examples=100, deadline=None)
    def test_node_scope_index(self, ops):
        from repro.topology import presets

        self._check(presets.barcelona(), ops)


#: golden run digests captured immediately before the incremental-
#: aggregate / columnar-recorder overhaul (and verified unchanged
#: after): result payload + full trace + engine fingerprint per smoke
GOLDEN_RUN_DIGESTS = {
    "ep-speedup": "4016a7371fbc87ec3c96b1f17824ae7c46f59af9c5347515d03b0b59b3b253ed",
    "balance-interval": "65a397c4115071f6e066f6a875b190896ce2ffec4c9aad6ad5970cd5cbcdcf88",
    "npb-speed": "493a9e3ec671980a1cf514757ac42433204c8760fe5f73064f0561c4f5880481",
    "npb-load": "004e3e9f8b11392943552216a139c6743fb362accae0613f8b50b948235707ea",
    "npb-numa": "e5beaf948eb06f9852093ecef7b7ae5ac5e1b47e364357bdfab4526db46da100",
    "cpu-hog": "974ed50673b3ccabc84fa696c1466991ffec3d8e11b3068abc6e61c4e18b692c",
    "make-share": "8b202e354250be2665f50f661d274572bbc44f459a4d939d3f75eaa76b52620a",
}


class TestScenarioDigestParity:
    """Every scenario smoke reproduces its pre-overhaul run digest.

    Parametrized over every event-dispatch backend: the batched engine
    must hit the same goldens as the heap, which is the digest wall the
    batching fast paths live behind.
    """

    def test_goldens_cover_every_smoke(self):
        from repro.harness.scenarios import scenario_smokes

        assert set(scenario_smokes()) == set(GOLDEN_RUN_DIGESTS)

    @pytest.mark.parametrize("engine", backend_names())
    def test_run_digests_match_goldens(self, engine):
        from repro.harness.scenarios import scenario_smokes
        from repro.sim.backends import backend_available

        if not backend_available(engine):
            pytest.skip(f"{engine!r} backend unavailable (no C toolchain)")
        drifted = {}
        for name, smoke in scenario_smokes().items():
            result, system = smoke.run(engine=engine)
            digest = run_digest(result, system.trace, system.engine)
            if digest != GOLDEN_RUN_DIGESTS[name]:
                drifted[name] = digest
        assert not drifted, (
            f"run_digest drift vs the pre-overhaul goldens under the "
            f"{engine!r} backend (determinism regression unless the "
            f"behaviour change was intended): {drifted}"
        )
