"""Tests for the whole-program flow analyzer (:mod:`repro.analysis.flow`).

Each FLOW rule gets a planted interprocedural fixture the per-file SIM
linter provably misses, plus clean cases showing the detainting rules
(timestamp algebra, seeded rngs, sorted boundaries) avoid false
positives.  The repo-is-clean test at the bottom is the acceptance
check: the shipped tree analyzes to zero findings against the shipped
zero-entry allowlist and baseline.
"""

import json
import textwrap
from collections import Counter
from pathlib import Path

import pytest

from repro.analysis import suppress
from repro.analysis.flow import (
    DEFAULT_ALLOWLIST,
    DEFAULT_BASELINE,
    FLOW_RULES,
    FlowFinding,
    flow_paths,
)
from repro.analysis.flow.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.analysis.flow.cli import main as flow_main
from repro.analysis.lint import lint_source

REPO = Path(__file__).resolve().parents[1]


def write_tree(root: Path, files: dict) -> None:
    """Materialize ``relative-path -> source`` with package __init__ chain."""
    for rel, src in files.items():
        p = root / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(src))
        d = p.parent
        while d != root:
            init = d / "__init__.py"
            if not init.exists():
                init.write_text("")
            d = d.parent


def flow_rules(root: Path, files: dict) -> list:
    write_tree(root, files)
    return [f.rule for f in flow_paths([root])]


class TestFlow001FloatOnTimestamp:
    def test_two_function_float_leak_missed_by_lint(self, tmp_path):
        """The acceptance case: SIM004 sees neither file, flow does."""
        helper = """\
        def halve(t):
            return t / 2
        """
        caller = """\
        from repro.sched.helpers import halve


        def decide(engine):
            t = engine.now
            return halve(t)
        """
        for src in (helper, caller):
            assert [
                f.rule for f in lint_source(textwrap.dedent(src), Path("src/repro/sched/x.py"))
            ] == []
        write_tree(tmp_path, {"repro/sched/helpers.py": helper, "repro/sched/leak.py": caller})
        findings = flow_paths([tmp_path])
        assert [f.rule for f in findings] == ["FLOW001"]
        assert findings[0].path.endswith("leak.py")
        assert "halve" in findings[0].message

    def test_float_return_reaches_schedule_time(self, tmp_path):
        assert flow_rules(
            tmp_path,
            {
                "repro/sched/timer.py": """\
                def jitter():
                    return 1.5


                def arm(engine):
                    engine.schedule(jitter(), "tick")
                """
            },
        ) == ["FLOW001"]

    def test_transitive_wrapper_chain(self, tmp_path):
        """The sink summary propagates through a forwarding wrapper."""
        assert flow_rules(
            tmp_path,
            {
                "repro/sched/deep.py": """\
                def divide(x):
                    return x / 4


                def forward(y):
                    return divide(y)


                def top(engine):
                    return forward(engine.now)
                """
            },
        ) == ["FLOW001"]

    def test_duration_division_is_clean(self, tmp_path):
        """timestamp - timestamp is a duration; dividing it is the paper."""
        assert flow_rules(
            tmp_path,
            {
                "repro/core/metric.py": """\
                def speed(engine, prev):
                    dur = engine.now - prev
                    return dur / 1000
                """
            },
        ) == []

    def test_sink_outside_time_dirs_is_clean(self, tmp_path):
        """Display math in metrics/ may scale timestamps freely."""
        assert flow_rules(
            tmp_path,
            {
                "repro/metrics/plot.py": """\
                def axis(engine):
                    t = engine.now
                    return t / 1e6
                """
            },
        ) == []


class TestFlow002RandomnessIntoDecisions:
    def test_random_return_reaches_decision_module(self, tmp_path):
        assert flow_rules(
            tmp_path,
            {
                "repro/harness/noise.py": """\
                import random


                def draw():
                    return random.random()
                """,
                "repro/balance/decide.py": """\
                from repro.harness.noise import draw


                def decide():
                    return draw() > 0.5
                """,
            },
        ) == ["FLOW002"]

    def test_random_arg_passed_into_decision_callee(self, tmp_path):
        assert flow_rules(
            tmp_path,
            {
                "repro/balance/pick.py": """\
                def pick(jitter):
                    return jitter
                """,
                "repro/harness/drive.py": """\
                import random

                from repro.balance.pick import pick


                def drive():
                    return pick(random.random())
                """,
            },
        ) == ["FLOW002"]

    def test_seeded_rng_is_clean(self, tmp_path):
        assert flow_rules(
            tmp_path,
            {
                "repro/harness/noise.py": """\
                import random


                def draw(seed):
                    r = random.Random(seed)
                    return r.random()
                """,
                "repro/balance/decide.py": """\
                from repro.harness.noise import draw


                def decide():
                    return draw(42) > 0.5
                """,
            },
        ) == []


class TestFlow003EscapedSetIteration:
    def test_set_return_iterated_in_decision_module(self, tmp_path):
        assert flow_rules(
            tmp_path,
            {
                "repro/harness/pool.py": """\
                def live():
                    return {1, 2, 3}
                """,
                "repro/sched/scan.py": """\
                from repro.harness.pool import live


                def scan():
                    out = []
                    for t in live():
                        out.append(t)
                    return out
                """,
            },
        ) == ["FLOW003"]

    def test_set_passed_into_decision_iterator(self, tmp_path):
        assert flow_rules(
            tmp_path,
            {
                "repro/balance/picker.py": """\
                def pick(cands):
                    best = None
                    for c in cands:
                        best = c
                    return best
                """,
                "repro/harness/drive.py": """\
                from repro.balance.picker import pick


                def drive(ids):
                    return pick(set(ids))
                """,
            },
        ) == ["FLOW003"]

    def test_sorted_boundary_is_clean(self, tmp_path):
        assert flow_rules(
            tmp_path,
            {
                "repro/harness/pool.py": """\
                def live():
                    return {1, 2, 3}
                """,
                "repro/sched/scan.py": """\
                from repro.harness.pool import live


                def scan():
                    return [t for t in sorted(live())]
                """,
            },
        ) == []

    def test_local_set_stays_lints_domain(self, tmp_path):
        """A set that never crosses a function boundary is SIM001's job."""
        assert flow_rules(
            tmp_path,
            {
                "repro/sched/local.py": """\
                def scan():
                    for t in {1, 2, 3}:  # sim-lint: ignore[SIM001]
                        pass
                """
            },
        ) == []


class TestFlow004HotPathGlobalWrites:
    def test_global_dict_write_in_sched(self, tmp_path):
        assert flow_rules(
            tmp_path,
            {
                "repro/sched/cache.py": """\
                _CACHE = {}


                def remember(key, value):
                    _CACHE[key] = value
                """
            },
        ) == ["FLOW004"]

    def test_mutation_reachable_through_call_chain(self, tmp_path):
        findings_files = {
            "repro/util/reg.py": """\
            REGISTRY = []


            def add(x):
                REGISTRY.append(x)
            """,
            "repro/sched/use.py": """\
            from repro.util.reg import add


            def tick():
                add(1)
            """,
        }
        write_tree(tmp_path, findings_files)
        findings = flow_paths([tmp_path])
        assert [f.rule for f in findings] == ["FLOW004"]
        assert findings[0].path.endswith("reg.py")
        assert "repro.sched.use:tick" in findings[0].message

    def test_iterator_advance_counts_as_write(self, tmp_path):
        assert flow_rules(
            tmp_path,
            {
                "repro/sched/ids.py": """\
                import itertools

                _ids = itertools.count()


                def fresh():
                    return next(_ids)
                """
            },
        ) == ["FLOW004"]

    def test_cold_path_mutation_is_clean(self, tmp_path):
        assert flow_rules(
            tmp_path,
            {
                "repro/metrics/agg.py": """\
                TOTALS = {}


                def tally(key):
                    TOTALS[key] = TOTALS.get(key, 0) + 1
                """
            },
        ) == []

    def test_local_shadow_is_clean(self, tmp_path):
        assert flow_rules(
            tmp_path,
            {
                "repro/sched/shadow.py": """\
                _CACHE = {}


                def pure(key):
                    _CACHE = {}
                    _CACHE[key] = 1
                    return _CACHE
                """
            },
        ) == []


class TestFlow005ClosuresIntoStoreKeys:
    def test_lambda_direct_to_spec_digest(self, tmp_path):
        assert flow_rules(
            tmp_path,
            {
                "repro/harness/save.py": """\
                from repro.store.keys import spec_digest


                def bad():
                    return spec_digest(lambda: 1)
                """
            },
        ) == ["FLOW005"]

    def test_lambda_via_intermediary(self, tmp_path):
        findings_files = {
            "repro/harness/save.py": """\
            from repro.store.keys import spec_digest


            def save(spec):
                return spec_digest(spec)


            def bad():
                return save(lambda: 1)
            """
        }
        write_tree(tmp_path, findings_files)
        findings = flow_paths([tmp_path])
        assert [f.rule for f in findings] == ["FLOW005"]
        assert "save" in findings[0].message

    def test_local_function_flagged(self, tmp_path):
        assert flow_rules(
            tmp_path,
            {
                "repro/harness/save.py": """\
                from repro.store.keys import digest_of


                def bad():
                    def inner():
                        return 1

                    return digest_of(inner)
                """
            },
        ) == ["FLOW005"]

    def test_module_level_function_is_clean(self, tmp_path):
        assert flow_rules(
            tmp_path,
            {
                "repro/harness/save.py": """\
                from repro.store.keys import spec_digest


                def payload():
                    return 1


                def good():
                    return spec_digest(payload)
                """
            },
        ) == []


class TestCallGraphEdges:
    def test_method_resolution_on_constructed_instance(self, tmp_path):
        assert flow_rules(
            tmp_path,
            {
                "repro/sched/scaler.py": """\
                class Scaler:
                    def scale(self, t):
                        return t / 4


                def use(engine):
                    s = Scaler()
                    return s.scale(engine.now)
                """
            },
        ) == ["FLOW001"]

    def test_reexport_chain(self, tmp_path):
        assert flow_rules(
            tmp_path,
            {
                "repro/balance/__init__.py": "from repro.balance.helpers import halve\n",
                "repro/balance/helpers.py": """\
                def halve(t):
                    return t / 2
                """,
                "repro/sched/user.py": """\
                from repro.balance import halve


                def go(engine):
                    t = engine.now
                    return halve(t)
                """,
            },
        ) == ["FLOW001"]

    def test_aliased_module_import(self, tmp_path):
        assert flow_rules(
            tmp_path,
            {
                "repro/sched/helpers.py": """\
                def halve(t):
                    return t / 2
                """,
                "repro/sched/alias_user.py": """\
                import repro.sched.helpers as hh


                def go(engine):
                    return hh.halve(engine.now)
                """,
            },
        ) == ["FLOW001"]

    def test_relative_import(self, tmp_path):
        assert flow_rules(
            tmp_path,
            {
                "repro/sched/helpers.py": """\
                def halve(t):
                    return t / 2
                """,
                "repro/sched/rel_user.py": """\
                from .helpers import halve


                def go(engine):
                    return halve(engine.now)
                """,
            },
        ) == ["FLOW001"]


class TestSuppression:
    def test_mixed_sim_flow_ids_parse(self):
        rules = suppress.suppressed_rules("x = 1  # sim-lint: ignore[SIM004, FLOW001]")
        assert rules == frozenset({"SIM004", "FLOW001"})

    def test_lint_honours_mixed_comment(self):
        src = "for x in {1, 2, 3}:  # sim-lint: ignore[SIM001, FLOW003]\n    pass\n"
        assert [f.rule for f in lint_source(src, Path("src/repro/balance/fake.py"))] == []

    def test_flow_honours_mixed_comment(self, tmp_path):
        assert flow_rules(
            tmp_path,
            {
                "repro/harness/pool.py": """\
                def live():
                    return {1, 2, 3}
                """,
                "repro/sched/scan.py": """\
                from repro.harness.pool import live


                def scan():
                    for t in live():  # sim-lint: ignore[SIM001, FLOW003]
                        pass
                """,
            },
        ) == []

    def test_unrelated_id_does_not_suppress(self, tmp_path):
        assert flow_rules(
            tmp_path,
            {
                "repro/sched/cache.py": """\
                _CACHE = {}


                def remember(key, value):
                    _CACHE[key] = value  # sim-lint: ignore[FLOW001]
                """
            },
        ) == ["FLOW004"]

    def test_skip_file(self, tmp_path):
        assert flow_rules(
            tmp_path,
            {
                "repro/sched/cache.py": """\
                # sim-lint: skip-file
                _CACHE = {}


                def remember(key, value):
                    _CACHE[key] = value
                """
            },
        ) == []


class TestBaselineRatchet:
    FIXTURE = {
        "repro/sched/cache.py": """\
        _CACHE = {}


        def remember(key, value):
            _CACHE[key] = value
        """
    }

    def test_fingerprint_is_layout_stable(self):
        a = FlowFinding("src/repro/sched/x.py", 3, 1, "FLOW004", "m", "repro.sched.x:f")
        b = FlowFinding("/opt/lib/repro/sched/x.py", 9, 5, "FLOW004", "m", "repro.sched.x:f")
        assert fingerprint(a) == fingerprint(b)

    def test_round_trip_and_both_ratchet_directions(self, tmp_path):
        write_tree(tmp_path, self.FIXTURE)
        findings = flow_paths([tmp_path])
        assert findings
        bl = tmp_path / "baseline.txt"
        write_baseline(findings, bl)
        allowed = load_baseline(bl, frozenset(FLOW_RULES))

        new, stale = apply_baseline(findings, allowed)
        assert new == [] and stale == []
        # finding fixed but baseline entry kept -> stale fails the run
        new, stale = apply_baseline([], allowed)
        assert new == [] and stale == [fingerprint(findings[0])]
        # one more finding of the same fingerprint -> new fails the run
        new, stale = apply_baseline(findings + findings, allowed)
        assert new == findings and stale == []

    def test_multiplicity_suffix(self, tmp_path):
        f = FlowFinding("repro/sched/x.py", 3, 1, "FLOW004", "m", "repro.sched.x:f")
        g = FlowFinding("repro/sched/x.py", 9, 1, "FLOW004", "m", "repro.sched.x:f")
        bl = tmp_path / "baseline.txt"
        write_baseline([f, g], bl)
        assert f"{fingerprint(f)} x2" in bl.read_text()
        allowed = load_baseline(bl, frozenset(FLOW_RULES))
        assert allowed == Counter({fingerprint(f): 2})

    def test_unknown_rule_id_rejected(self, tmp_path):
        bl = tmp_path / "baseline.txt"
        bl.write_text("FLOW999 repro/x.py:mod:f\n")
        with pytest.raises(ValueError):
            load_baseline(bl, frozenset(FLOW_RULES))


class TestCli:
    FIXTURE = {
        "repro/sched/cache.py": """\
        _CACHE = {}


        def remember(key, value):
            _CACHE[key] = value
        """,
        "repro/sched/timer.py": """\
        def jitter():
            return 1.5


        def arm(engine):
            engine.schedule(jitter(), "tick")
        """,
    }

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        write_tree(tmp_path, {"repro/sched/ok.py": "def f(x):\n    return x + 1\n"})
        assert flow_main([str(tmp_path), "--no-baseline", "--no-allowlist"]) == 0

    def test_exit_one_and_report_on_findings(self, tmp_path, capsys):
        write_tree(tmp_path, self.FIXTURE)
        assert flow_main([str(tmp_path), "--no-baseline", "--no-allowlist"]) == 1
        out = capsys.readouterr().out
        assert "FLOW004" in out and "FLOW001" in out

    def test_format_json(self, tmp_path, capsys):
        write_tree(tmp_path, self.FIXTURE)
        rc = flow_main(
            [str(tmp_path), "--no-baseline", "--no-allowlist", "--format", "json"]
        )
        data = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert sorted(d["rule"] for d in data) == ["FLOW001", "FLOW004"]
        assert all("function" in d for d in data)

    def test_select_filters_rules(self, tmp_path, capsys):
        write_tree(tmp_path, self.FIXTURE)
        assert (
            flow_main(
                [str(tmp_path), "--no-baseline", "--no-allowlist", "--select", "FLOW004"]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "FLOW004" in out and "FLOW001" not in out

    def test_unknown_select_rejected(self, tmp_path, capsys):
        assert flow_main([str(tmp_path), "--select", "FLOW999"]) == 2

    def test_write_baseline_then_ratchet(self, tmp_path, capsys):
        write_tree(tmp_path, self.FIXTURE)
        bl = tmp_path / "baseline.txt"
        assert (
            flow_main(
                [str(tmp_path), "--no-allowlist", "--baseline", str(bl), "--write-baseline"]
            )
            == 0
        )
        # baselined findings no longer fail the run ...
        assert flow_main([str(tmp_path), "--no-allowlist", "--baseline", str(bl)]) == 0
        capsys.readouterr()
        # ... but fixing one makes its entry stale, which fails again
        (tmp_path / "repro/sched/cache.py").write_text("def remember(k, v):\n    return (k, v)\n")
        assert flow_main([str(tmp_path), "--no-allowlist", "--baseline", str(bl)]) == 1
        assert "stale baseline entry" in capsys.readouterr().err


class TestCatalogue:
    def test_rule_ids_complete(self):
        assert sorted(FLOW_RULES) == [f"FLOW00{i}" for i in range(1, 6)]

    def test_rules_command_prints_flow_catalogue(self, capsys):
        from repro.analysis.__main__ import main as analysis_main

        assert analysis_main(["rules"]) == 0
        out = capsys.readouterr().out
        for rid in FLOW_RULES:
            assert rid in out
        assert "SIM001" in out and "INV001" in out and "SAN001" in out


class TestRepoIsClean:
    def test_whole_tree_zero_findings(self):
        findings = flow_paths([REPO / "src" / "repro"])
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_shipped_allowlist_is_zero_entry(self):
        entries = suppress.load_allowlist(DEFAULT_ALLOWLIST, frozenset(FLOW_RULES))
        assert entries == []

    def test_shipped_baseline_is_zero_entry(self):
        allowed = load_baseline(DEFAULT_BASELINE, frozenset(FLOW_RULES))
        assert allowed == Counter()
