"""Unit tests for the runtime invariant checker (:mod:`repro.analysis.invariants`).

Each invariant INV001..INV006 is exercised by deliberately corrupting a
live simulation (forged past events, tampered accounting, broken
balancer state) and asserting the checker raises
:class:`InvariantViolation` with the right rule id.  The violation
tests install their own checkers and opt out of the suite-wide autouse
fixture (``no_invariants``) so the corruption does not trip a second,
fixture-installed checker first.
"""

import heapq

import pytest

from repro.analysis.invariants import (
    INVARIANTS,
    InvariantChecker,
    InvariantConfig,
    InvariantViolation,
    install_invariant_checker,
)
from repro.apps.barriers import WaitPolicy
from repro.apps.spmd import SpmdApp
from repro.apps.workloads import make_nas_app
from repro.balance.base import NoBalancer
from repro.balance.linux import LinuxLoadBalancer
from repro.core.speed_balancer import SpeedBalancer, SpeedBalancerConfig
from repro.harness.experiment import run_app
from repro.sched.task import TaskState, WaitMode
from repro.sim.engine import Event
from repro.system import System
from repro.topology import presets


def build_plain(n_cores=2, n_threads=2, work_us=300_000, stride=1):
    """A bare system + app with a checker installed, not yet spawned."""
    system = System(presets.uniform(n_cores), seed=0)
    system.set_balancer(NoBalancer())
    checker = install_invariant_checker(system, InvariantConfig(scan_stride=stride))
    app = SpmdApp(
        system,
        "app",
        n_threads,
        work_us=work_us,
        iterations=1,
        wait_policy=WaitPolicy(mode=WaitMode.YIELD),
        barrier_every_iteration=False,
    )
    return system, app, checker


def build_speed(machine=None, cores=None, n_threads=4, config=None, stride=1):
    """System + SPMD app managed by a speed balancer, checker installed."""
    system = System(machine or presets.uniform(4), seed=0)
    system.set_balancer(LinuxLoadBalancer())
    app = SpmdApp(
        system,
        "app",
        n_threads,
        work_us=2_000_000,
        iterations=1,
        wait_policy=WaitPolicy(mode=WaitMode.YIELD),
        barrier_every_iteration=False,
    )
    sb = SpeedBalancer(app, cores=cores, config=config)
    system.add_user_balancer(sb)
    checker = install_invariant_checker(system, InvariantConfig(scan_stride=stride))
    app.spawn(cores=cores)
    return system, app, sb, checker


@pytest.mark.no_invariants
class TestInstallation:
    def test_install_is_idempotent(self):
        system = System(presets.uniform(2), seed=0)
        checker = InvariantChecker(system)
        checker.install()
        checker.install()
        assert len(system.engine.observers) == 1
        assert system.invariant_checker is checker

    def test_uninstall_removes_hooks(self):
        system = System(presets.uniform(2), seed=0)
        checker = install_invariant_checker(system)
        checker.uninstall()
        checker.uninstall()  # idempotent
        assert system.engine.observers == []
        assert system.charge_observers == []
        assert system.migration_observers == []
        assert system.invariant_checker is None

    def test_catalogue_complete(self):
        assert sorted(INVARIANTS) == [f"INV00{i}" for i in range(1, 7)]


@pytest.mark.no_invariants
class TestInv001ClockMonotonic:
    def test_forged_past_event_raises(self):
        system, app, checker = build_plain()
        eng = system.engine
        eng.schedule(100, lambda: None, label="warmup")
        eng.run()
        assert eng.now == 100
        # forge an event behind the clock, bypassing schedule()'s guard
        forged = Event(50, 10**9, lambda: None, "forged-past")
        heapq.heappush(eng._heap, (forged.time, forged.seq, forged))
        with pytest.raises(InvariantViolation) as ei:
            eng.run()
        assert ei.value.rule == "INV001"
        assert ei.value.trace and "forged-past" in ei.value.trace[-1]
        assert "recent events" in str(ei.value)

    def test_normal_run_is_clean(self):
        system, app, checker = build_plain()
        app.spawn(at=0)
        system.run_until_done([app])
        assert checker.stats["events"] > 0
        assert checker.stats["charges"] > 0


@pytest.mark.no_invariants
class TestInv002ExecVsReal:
    def test_inflated_exec_time_raises(self):
        system, app, checker = build_plain(n_cores=1, n_threads=2)
        app.spawn(at=0)
        system.run(until=20_000)
        task = app.tasks[0]
        assert task.started_at is not None
        task.exec_us += 10**9  # corrupt the taskstats accounting
        with pytest.raises(InvariantViolation) as ei:
            system.run_until_done([app])
        assert ei.value.rule == "INV002"
        assert task.name in str(ei.value)


@pytest.mark.no_invariants
class TestInv003BusyConservation:
    def test_tampered_core_busy_time_raises(self):
        system, app, checker = build_plain(n_cores=1, n_threads=2)
        app.spawn(at=0)
        system.run(until=20_000)
        system.cores[0].stats.busy_us += 777  # drift the core counter
        with pytest.raises(InvariantViolation) as ei:
            system.run_until_done([app])
        assert ei.value.rule == "INV003"
        assert "drift" in str(ei.value)

    def test_negative_charge_raises(self):
        system, app, checker = build_plain()
        app.spawn(at=0)
        system.run(until=10_000)
        core = system.cores[0]
        with pytest.raises(InvariantViolation) as ei:
            system.on_task_charged(core, app.tasks[0], -5)
        assert ei.value.rule == "INV003"
        assert "negative" in str(ei.value)

    def test_baseline_allows_mid_run_install(self):
        # a checker installed on a system that has already run must not
        # misread pre-existing busy time as unexplained drift
        system = System(presets.uniform(1), seed=0)
        system.set_balancer(NoBalancer())
        app = SpmdApp(
            system, "app", 2, work_us=100_000, iterations=1,
            wait_policy=WaitPolicy(mode=WaitMode.YIELD),
            barrier_every_iteration=False,
        )
        app.spawn(at=0)
        system.run(until=50_000)
        assert system.cores[0].stats.busy_us > 0
        checker = install_invariant_checker(system, InvariantConfig(scan_stride=1))
        system.run_until_done([app])
        assert checker.stats["charges"] > 0


@pytest.mark.no_invariants
class TestInv004RunningState:
    def _running_pair(self):
        system, app, checker = build_plain(n_cores=2, n_threads=2)
        app.spawn(at=0)
        system.run(until=10_000)
        running = [t for t in app.tasks if t.state == TaskState.RUNNING]
        assert len(running) == 2
        return system, checker, running

    def _expect_scan_failure(self, system):
        system.engine.schedule(1, lambda: None, label="tick")
        with pytest.raises(InvariantViolation) as ei:
            system.run(until=20_000)
        return ei.value

    def test_two_running_tasks_on_one_core(self):
        system, checker, (t0, t1) = self._running_pair()
        t1.cur_core = t0.cur_core
        exc = self._expect_scan_failure(system)
        assert exc.rule == "INV004"
        assert "two running tasks" in str(exc)

    def test_running_task_without_core(self):
        system, checker, (t0, t1) = self._running_pair()
        t1.cur_core = None
        exc = self._expect_scan_failure(system)
        assert exc.rule == "INV004"
        assert "not placed" in str(exc)

    def test_core_claims_non_running_task(self):
        system, checker, (t0, t1) = self._running_pair()
        t1.state = TaskState.RUNNABLE  # core still believes it runs t1
        exc = self._expect_scan_failure(system)
        assert exc.rule == "INV004"
        assert "believes" in str(exc)

    def test_running_task_core_not_executing_it(self):
        system, checker, (t0, t1) = self._running_pair()
        system.cores[t1.cur_core].current = None
        exc = self._expect_scan_failure(system)
        assert exc.rule == "INV004"
        assert "not executing" in str(exc)


@pytest.mark.no_invariants
class TestInv005MigrationBlock:
    def _pull_setup(self, machine=None, cores=None, config=None):
        system, app, sb, checker = build_speed(
            machine=machine, cores=cores, config=config
        )
        system.run(until=400_000)  # past startup; threads placed and pinned
        task = next(
            t for t in app.tasks
            if t.state in (TaskState.RUNNING, TaskState.RUNNABLE)
        )
        src = task.cur_core
        dst = next(c for c in sb.requested_cores if c != src)
        return system, sb, checker, task, src, dst

    def test_pull_inside_block_window_raises(self):
        system, sb, checker, task, src, dst = self._pull_setup(cores=[0, 1, 2, 3])
        sb.last_migration_at[src] = system.engine.now  # fake fresh involvement
        before = checker.stats["migrations"]
        with pytest.raises(InvariantViolation) as ei:
            system.migrate(task, dst, forced=True, pin=True, reason="speed.pull")
        assert ei.value.rule == "INV005"
        assert checker.stats["migrations"] == before + 1

    def test_pull_outside_block_window_passes(self):
        system, sb, checker, task, src, dst = self._pull_setup(cores=[0, 1, 2, 3])
        # default last_migration_at is the distant past: a pull is legal
        assert system.migrate(task, dst, forced=True, pin=True, reason="speed.pull")
        assert checker.stats["migrations"] >= 1

    def test_unattributed_pull_is_not_judged(self):
        # a migration of a task no speed balancer manages cannot violate
        # the balancer policy, even with the reason string spoofed
        system, app, checker = build_plain()
        app.spawn(at=0)
        system.run(until=10_000)
        task = next(t for t in app.tasks if t.state == TaskState.RUNNING)
        dst = 1 - task.cur_core
        assert system.migrate(task, dst, forced=True, reason="speed.pull")


@pytest.mark.no_invariants
class TestInv006DomainFence:
    def _numa_pair(self, sb, machine):
        src_candidates = sorted(sb.requested_cores)
        a = src_candidates[0]
        b = next(
            c for c in src_candidates
            if machine.numa_node_of(c) != machine.numa_node_of(a)
        )
        return a, b

    def test_cross_numa_pull_raises_when_fenced(self):
        machine = presets.barcelona()
        system, app, sb, checker = build_speed(
            machine=machine, cores=[0, 1, 4, 5]
        )
        system.run(until=400_000)
        a, b = self._numa_pair(sb, machine)
        task = next(
            t for t in app.tasks
            if t.cur_core is not None
            and machine.numa_node_of(t.cur_core) == machine.numa_node_of(a)
            and t.state in (TaskState.RUNNING, TaskState.RUNNABLE)
        )
        dst = b if machine.numa_node_of(b) != machine.numa_node_of(task.cur_core) else a
        with pytest.raises(InvariantViolation) as ei:
            system.migrate(task, dst, forced=True, pin=True, reason="speed.pull")
        assert ei.value.rule == "INV006"
        assert "NUMA" in str(ei.value)

    def test_cross_numa_pull_allowed_when_enabled(self):
        machine = presets.barcelona()
        system, app, sb, checker = build_speed(
            machine=machine,
            cores=[0, 1, 4, 5],
            config=SpeedBalancerConfig(level_enabled={}),  # nothing fenced
        )
        system.run(until=400_000)
        a, b = self._numa_pair(sb, machine)
        task = next(
            t for t in app.tasks
            if t.cur_core is not None
            and machine.numa_node_of(t.cur_core) == machine.numa_node_of(a)
            and t.state in (TaskState.RUNNING, TaskState.RUNNABLE)
        )
        dst = b if machine.numa_node_of(b) != machine.numa_node_of(task.cur_core) else a
        assert system.migrate(task, dst, forced=True, pin=True, reason="speed.pull")


@pytest.mark.no_invariants
class TestEndToEnd:
    def test_speed_run_clean_at_full_scan_resolution(self):
        checkers = []

        def instrument(system):
            checkers.append(
                install_invariant_checker(system, InvariantConfig(scan_stride=1))
            )

        result = run_app(
            presets.tigerton,
            lambda system: make_nas_app(
                system, "ep.C", n_threads=6, total_compute_us=200_000
            ),
            balancer="speed",
            cores=4,
            instrument=instrument,
        )
        assert result.elapsed_us > 0
        (checker,) = checkers
        assert checker.stats["events"] > 0
        assert checker.stats["scans"] > 0

    def test_check_cli_smoke(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main([
            "check", "--invariants", "--seconds", "0.05", "--repeats", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "invariants: ok" in out


class TestSuiteWideFixture:
    def test_autouse_fixture_installs_checker(self):
        # no no_invariants marker here: the conftest fixture is active
        system = System(presets.uniform(2), seed=0)
        assert system.invariant_checker is not None
        assert system.invariant_checker.config.scan_stride == 32
