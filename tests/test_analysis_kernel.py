"""Tests for the kernel readiness analyzer (:mod:`repro.analysis.kernel`).

Each KERN rule gets a planted fixture inside a synthetic kernel zone
(``repro.sim``/``repro.sched``/``repro.balance``), including the
cross-function cases only the whole-program view catches: attribute
tables fed through typed references, and dispatch reachability through
escaped callbacks and typed-attribute call edges.  The repo-is-clean
test at the bottom is the acceptance check: the shipped tree analyzes
to zero unsuppressed findings against the shipped allowlist and the
committed (KERN005-only) ratchet baseline.
"""

import json
import textwrap
from collections import Counter
from pathlib import Path

import pytest

from repro.analysis import suppress
from repro.analysis.kernel import (
    DEFAULT_ALLOWLIST,
    DEFAULT_BASELINE,
    KERN_RULES,
    KernelFinding,
    kernel_paths,
)
from repro.analysis.kernel.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.analysis.kernel.cli import main as kernel_main

REPO = Path(__file__).resolve().parents[1]


def write_tree(root: Path, files: dict) -> None:
    """Materialize ``relative-path -> source`` with package __init__ chain."""
    for rel, src in files.items():
        p = root / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(src))
        d = p.parent
        while d != root:
            init = d / "__init__.py"
            if not init.exists():
                init.write_text("")
            d = d.parent


def kern_rules(root: Path, files: dict) -> list:
    write_tree(root, files)
    return [f.rule for f in kernel_paths([root])]


class TestKern001AttrOutsideInit:
    def test_attr_created_in_plain_method(self, tmp_path):
        findings = [
            f
            for f in (
                write_tree(
                    tmp_path,
                    {
                        "repro/sched/box.py": """\
                        class Box:
                            def __init__(self) -> None:
                                self.a = 0

                            def poke(self) -> None:
                                self.b = 1
                        """
                    },
                ),
                *kernel_paths([tmp_path]),
            )
            if f is not None
        ]
        assert [f.rule for f in findings] == ["KERN001"]
        assert "`b`" in findings[0].message and "Box" in findings[0].message

    def test_declared_attrs_and_slots_are_clean(self, tmp_path):
        assert (
            kern_rules(
                tmp_path,
                {
                    "repro/sched/box.py": """\
                    class Box:
                        __slots__ = ("a", "b")

                        def __init__(self) -> None:
                            self.a = 0

                        def poke(self) -> None:
                            self.b = 1
                            self.a += 1
                    """
                },
            )
            == []
        )

    def test_inherited_declaration_is_clean(self, tmp_path):
        """Assigning an attr the *base* __init__ declared is not creation."""
        assert (
            kern_rules(
                tmp_path,
                {
                    "repro/sched/box.py": """\
                    class Base:
                        def __init__(self) -> None:
                            self.a = 0


                    class Sub(Base):
                        def touch(self) -> None:
                            self.a = 2
                    """
                },
            )
            == []
        )

    def test_monkeypatch_via_typed_reference(self, tmp_path):
        """A helper holding a typed reference invents an attribute."""
        write_tree(
            tmp_path,
            {
                "repro/sched/box.py": """\
                class Box:
                    def __init__(self) -> None:
                        self.a = 0
                """,
                "repro/sched/mut.py": """\
                from repro.sched.box import Box


                def monkey(b: Box) -> None:
                    b.extra = 1
                """,
            },
        )
        findings = kernel_paths([tmp_path])
        assert [f.rule for f in findings] == ["KERN001"]
        assert findings[0].path.endswith("mut.py")
        assert "typed reference" in findings[0].message


class TestKern002TypeStability:
    def test_conflicting_types_across_methods(self, tmp_path):
        assert (
            kern_rules(
                tmp_path,
                {
                    "repro/sched/cell.py": """\
                    class Cell:
                        def __init__(self) -> None:
                            self.v = 0

                        def flip(self) -> None:
                            self.v = "oops"
                    """
                },
            )
            == ["KERN002"]
        )

    def test_optional_pattern_is_clean(self, tmp_path):
        """None plus exactly one other type is an Optional field."""
        assert (
            kern_rules(
                tmp_path,
                {
                    "repro/sched/cell.py": """\
                    class Cell:
                        def __init__(self) -> None:
                            self.v = None

                        def arm(self) -> None:
                            self.v = 3
                    """
                },
            )
            == []
        )

    def test_cross_module_conflict_through_typed_reference(self, tmp_path):
        """The cross-function case a per-class scan misses: another
        module's function, holding an annotated reference resolved
        through the import graph, re-types the attribute."""
        write_tree(
            tmp_path,
            {
                "repro/sched/cell.py": """\
                class Cell:
                    def __init__(self) -> None:
                        self.v = 0
                """,
                "repro/balance/mut.py": """\
                from repro.sched.cell import Cell


                def clobber(c: Cell) -> None:
                    c.v = 1.5
                """,
            },
        )
        findings = kernel_paths([tmp_path])
        assert [f.rule for f in findings] == ["KERN002"]
        assert "int" in findings[0].message and "float" in findings[0].message

    def test_subclass_retyping_base_attr(self, tmp_path):
        """Type sites merge across the class family."""
        assert (
            kern_rules(
                tmp_path,
                {
                    "repro/sched/cell.py": """\
                    class Base:
                        def __init__(self) -> None:
                            self.v = 0


                    class Sub(Base):
                        def flip(self) -> None:
                            self.v = "oops"
                    """
                },
            )
            == ["KERN002"]
        )


class TestKern003Annotations:
    def test_unannotated_entry_point(self, tmp_path):
        findings = []
        write_tree(
            tmp_path,
            {
                "repro/sim/loop.py": """\
                def run(x):
                    return x
                """
            },
        )
        findings = kernel_paths([tmp_path])
        assert [f.rule for f in findings] == ["KERN003"]
        assert "x" in findings[0].message and "return" in findings[0].message

    def test_reachable_helper_flagged_cold_helper_not(self, tmp_path):
        """Only the dispatch-reachable half of the module is held to
        the annotation bar."""
        write_tree(
            tmp_path,
            {
                "repro/sim/loop.py": """\
                def helper(a):
                    return a


                def cold(a):
                    return a


                def run(x: int) -> None:
                    helper(x)
                """
            },
        )
        findings = kernel_paths([tmp_path])
        assert [f.rule for f in findings] == ["KERN003"]
        assert findings[0].function.endswith("helper")

    def test_any_annotation_flagged(self, tmp_path):
        assert (
            kern_rules(
                tmp_path,
                {
                    "repro/sim/loop.py": """\
                    from typing import Any


                    def run(x: Any) -> None:
                        pass
                    """
                },
            )
            == ["KERN003"]
        )

    def test_reachability_through_typed_attribute_call(self, tmp_path):
        """``self.q.push(...)`` resolves through the __init__ assignment
        ``self.q = Q()`` -- the typed-attribute call edge."""
        write_tree(
            tmp_path,
            {
                "repro/sim/engx.py": """\
                class Q:
                    def __init__(self) -> None:
                        self.items: list = []

                    def push(self, v):
                        self.items.append(v)


                class Eng:
                    def __init__(self) -> None:
                        self.q = Q()

                    def run(self) -> None:
                        self.q.push(1)
                """
            },
        )
        findings = kernel_paths([tmp_path])
        assert [f.rule for f in findings] == ["KERN003"]
        assert findings[0].function.endswith("Q.push")


class TestKern004Variadics:
    def test_vararg_signature_on_entry(self, tmp_path):
        assert (
            kern_rules(
                tmp_path,
                {
                    "repro/sim/loop.py": """\
                    def run(*args: int) -> None:
                        pass
                    """
                },
            )
            == ["KERN004"]
        )

    def test_splat_call_in_reachable_function(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/sim/loop.py": """\
                def use(a: int, b: int) -> None:
                    pass


                def run() -> None:
                    vals = [1, 2]
                    use(*vals)
                """
            },
        )
        findings = kernel_paths([tmp_path])
        assert [f.rule for f in findings] == ["KERN004"]
        assert "splat" in findings[0].message


class TestKern005Closures:
    def test_lambda_in_entry_point(self, tmp_path):
        assert (
            kern_rules(
                tmp_path,
                {
                    "repro/sim/loop.py": """\
                    def run() -> None:
                        cb = lambda: 1
                    """
                },
            )
            == ["KERN005"]
        )

    def test_nested_def_in_entry_point(self, tmp_path):
        findings = []
        write_tree(
            tmp_path,
            {
                "repro/sim/loop.py": """\
                def run() -> None:
                    def inner() -> None:
                        pass
                """
            },
        )
        findings = kernel_paths([tmp_path])
        assert [f.rule for f in findings] == ["KERN005"]
        assert "inner" in findings[0].message

    def test_lambda_in_cold_function_is_clean(self, tmp_path):
        assert (
            kern_rules(
                tmp_path,
                {
                    "repro/sched/setup.py": """\
                    def configure() -> None:
                        cb = lambda: 1
                    """
                },
            )
            == []
        )

    def test_reachability_through_escaped_callback(self, tmp_path):
        """Storing a bound method in __init__ makes it a dispatch root:
        the event system can invoke it per event."""
        assert (
            kern_rules(
                tmp_path,
                {
                    "repro/sched/pump.py": """\
                    class Pump:
                        def __init__(self) -> None:
                            self._cb = self._tick

                        def _tick(self) -> None:
                            x = lambda: 1
                    """
                },
            )
            == ["KERN005"]
        )

    def test_reachability_through_escaping_lambda_body(self, tmp_path):
        """A method only called from inside an escaping lambda still
        runs at dispatch time, so its own closures are hot."""
        assert (
            kern_rules(
                tmp_path,
                {
                    "repro/sched/pump.py": """\
                    class Pump:
                        def go(self, cb: object) -> None:
                            pass

                        def fire(self) -> None:
                            y = lambda: 2


                    def arm(p: Pump) -> None:
                        p.go(lambda: p.fire())
                    """
                },
            )
            == ["KERN005"]
        )


class TestKern006ModuleHygiene:
    def test_eval_flagged_regardless_of_reachability(self, tmp_path):
        findings = []
        write_tree(
            tmp_path,
            {
                "repro/sim/dyn.py": """\
                def parse(s: str) -> int:
                    return eval(s)
                """
            },
        )
        findings = kernel_paths([tmp_path])
        assert [f.rule for f in findings] == ["KERN006"]
        assert "eval" in findings[0].message

    def test_metaclass_and_dynamic_hook(self, tmp_path):
        rules = kern_rules(
            tmp_path,
            {
                "repro/sim/dyn.py": """\
                class Meta(type):
                    pass


                class Reg(metaclass=Meta):
                    pass


                class Lazy:
                    def __getattr__(self, name: str) -> int:
                        return 0
                """
            },
        )
        assert rules == ["KERN006", "KERN006"]


class TestKern007LoopAllocations:
    def test_over_budget_allocations_in_loop(self, tmp_path):
        findings = []
        write_tree(
            tmp_path,
            {
                "repro/sim/loop.py": """\
                def run(n: int) -> None:
                    total = 0
                    for i in range(n):
                        a = [i]
                        b = {i: 1}
                        c = {i}
                        total += i
                """
            },
        )
        findings = kernel_paths([tmp_path])
        assert [f.rule for f in findings] == ["KERN007"]
        assert "3 container allocations" in findings[0].message

    def test_within_budget_is_clean(self, tmp_path):
        assert (
            kern_rules(
                tmp_path,
                {
                    "repro/sim/loop.py": """\
                    def run(n: int) -> None:
                        total = 0
                        for i in range(n):
                            a = [i]
                            b = {i: 1}
                            total += i
                    """
                },
            )
            == []
        )


class TestKern008DynamicDispatch:
    def test_isinstance_and_hasattr_probes(self, tmp_path):
        rules = kern_rules(
            tmp_path,
            {
                "repro/sim/loop.py": """\
                def run(x: object) -> None:
                    if isinstance(x, int):
                        pass
                    if hasattr(x, "tid"):
                        pass
                """
            },
        )
        assert rules == ["KERN008", "KERN008"]

    def test_probe_in_cold_code_is_clean(self, tmp_path):
        assert (
            kern_rules(
                tmp_path,
                {
                    "repro/sched/setup.py": """\
                    def configure(x: object) -> bool:
                        return isinstance(x, int)
                    """
                },
            )
            == []
        )


class TestSuppression:
    FIXTURE_LINE = """\
    def run() -> None:
        cb = lambda: 1  # sim-lint: ignore[{ids}]
    """

    def test_kern_id_suppresses(self, tmp_path):
        src = self.FIXTURE_LINE.format(ids="KERN005")
        assert kern_rules(tmp_path, {"repro/sim/loop.py": src}) == []

    def test_mixed_catalogue_ids_suppress(self, tmp_path):
        src = self.FIXTURE_LINE.format(ids="SIM004, KERN005")
        assert kern_rules(tmp_path, {"repro/sim/loop.py": src}) == []

    def test_unrelated_id_does_not_suppress(self, tmp_path):
        src = self.FIXTURE_LINE.format(ids="KERN001")
        assert kern_rules(tmp_path, {"repro/sim/loop.py": src}) == ["KERN005"]

    def test_skip_file(self, tmp_path):
        assert (
            kern_rules(
                tmp_path,
                {
                    "repro/sim/loop.py": """\
                    # sim-lint: skip-file
                    def run() -> None:
                        cb = lambda: 1
                    """
                },
            )
            == []
        )


class TestBaselineRatchet:
    FIXTURE = {
        "repro/sim/loop.py": """\
        def run() -> None:
            cb = lambda: 1
        """
    }

    def test_fingerprint_is_layout_stable(self):
        a = KernelFinding("src/repro/sched/x.py", 3, 1, "KERN005", "m", "repro.sched.x:f")
        b = KernelFinding("/opt/lib/repro/sched/x.py", 9, 5, "KERN005", "m", "repro.sched.x:f")
        assert fingerprint(a) == fingerprint(b)

    def test_round_trip_and_both_ratchet_directions(self, tmp_path):
        write_tree(tmp_path, self.FIXTURE)
        findings = kernel_paths([tmp_path])
        assert findings
        bl = tmp_path / "baseline.txt"
        write_baseline(findings, bl)
        assert "repro.analysis kernel" in bl.read_text()  # header names the tool
        allowed = load_baseline(bl, frozenset(KERN_RULES))

        new, stale = apply_baseline(findings, allowed)
        assert new == [] and stale == []
        # finding fixed but baseline entry kept -> stale fails the run
        new, stale = apply_baseline([], allowed)
        assert new == [] and stale == [fingerprint(findings[0])]
        # one more finding of the same fingerprint -> new fails the run
        new, stale = apply_baseline(findings + findings, allowed)
        assert new == findings and stale == []

    def test_multiplicity_suffix(self, tmp_path):
        f = KernelFinding("repro/sched/x.py", 3, 1, "KERN005", "m", "repro.sched.x:f")
        g = KernelFinding("repro/sched/x.py", 9, 1, "KERN005", "m", "repro.sched.x:f")
        bl = tmp_path / "baseline.txt"
        write_baseline([f, g], bl)
        assert f"{fingerprint(f)} x2" in bl.read_text()
        allowed = load_baseline(bl, frozenset(KERN_RULES))
        assert allowed == Counter({fingerprint(f): 2})

    def test_unknown_rule_id_rejected(self, tmp_path):
        bl = tmp_path / "baseline.txt"
        bl.write_text("KERN999 repro/x.py:mod:f\n")
        with pytest.raises(ValueError):
            load_baseline(bl, frozenset(KERN_RULES))


class TestCli:
    FIXTURE = {
        "repro/sim/loop.py": """\
        def run() -> None:
            cb = lambda: 1
        """,
        "repro/sim/dyn.py": """\
        def parse(s: str) -> int:
            return eval(s)
        """,
    }

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        write_tree(
            tmp_path, {"repro/sim/ok.py": "def run(x: int) -> int:\n    return x + 1\n"}
        )
        assert kernel_main([str(tmp_path), "--no-baseline", "--no-allowlist"]) == 0

    def test_exit_one_and_report_on_findings(self, tmp_path, capsys):
        write_tree(tmp_path, self.FIXTURE)
        assert kernel_main([str(tmp_path), "--no-baseline", "--no-allowlist"]) == 1
        out = capsys.readouterr().out
        assert "KERN005" in out and "KERN006" in out

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert kernel_main([str(tmp_path / "nope")]) == 2

    def test_format_json(self, tmp_path, capsys):
        write_tree(tmp_path, self.FIXTURE)
        rc = kernel_main(
            [str(tmp_path), "--no-baseline", "--no-allowlist", "--format", "json"]
        )
        data = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert sorted(d["rule"] for d in data) == ["KERN005", "KERN006"]
        assert all("function" in d for d in data)

    def test_select_filters_rules(self, tmp_path, capsys):
        write_tree(tmp_path, self.FIXTURE)
        assert (
            kernel_main(
                [str(tmp_path), "--no-baseline", "--no-allowlist", "--select", "KERN006"]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "KERN006" in out and "KERN005" not in out

    def test_unknown_select_rejected(self, tmp_path, capsys):
        assert kernel_main([str(tmp_path), "--select", "KERN999"]) == 2

    def test_write_baseline_then_ratchet(self, tmp_path, capsys):
        write_tree(tmp_path, self.FIXTURE)
        bl = tmp_path / "baseline.txt"
        assert (
            kernel_main(
                [str(tmp_path), "--no-allowlist", "--baseline", str(bl), "--write-baseline"]
            )
            == 0
        )
        # baselined findings no longer fail the run ...
        assert kernel_main([str(tmp_path), "--no-allowlist", "--baseline", str(bl)]) == 0
        capsys.readouterr()
        # ... but fixing one makes its entry stale, which fails again
        (tmp_path / "repro/sim/dyn.py").write_text(
            "def parse(s: str) -> int:\n    return int(s)\n"
        )
        assert kernel_main([str(tmp_path), "--no-allowlist", "--baseline", str(bl)]) == 1
        assert "stale baseline entry" in capsys.readouterr().err


class TestCatalogue:
    def test_rule_ids_complete(self):
        assert sorted(KERN_RULES) == [f"KERN00{i}" for i in range(1, 9)]

    def test_rules_command_prints_kern_catalogue(self, capsys):
        from repro.analysis.__main__ import main as analysis_main

        assert analysis_main(["rules"]) == 0
        out = capsys.readouterr().out
        for rid in KERN_RULES:
            assert rid in out
        assert "SIM001" in out and "FLOW001" in out

    def test_kernel_subcommand_wired(self, tmp_path, capsys):
        from repro.analysis.__main__ import main as analysis_main

        write_tree(
            tmp_path, {"repro/sim/ok.py": "def run(x: int) -> int:\n    return x\n"}
        )
        assert analysis_main(["kernel", str(tmp_path), "--no-baseline"]) == 0


class TestRepoIsClean:
    def test_whole_tree_ratchets_to_zero(self):
        """The acceptance check: shipped tree + shipped baseline = clean."""
        findings = kernel_paths(
            [REPO / "src" / "repro"],
            suppress.load_allowlist(DEFAULT_ALLOWLIST, frozenset(KERN_RULES)),
        )
        allowed = load_baseline(DEFAULT_BASELINE, frozenset(KERN_RULES))
        new, stale = apply_baseline(findings, allowed)
        assert new == [], "\n".join(f.format() for f in new)
        assert stale == []

    def test_shipped_allowlist_is_zero_entry(self):
        entries = suppress.load_allowlist(DEFAULT_ALLOWLIST, frozenset(KERN_RULES))
        assert entries == []

    def test_shipped_baseline_is_empty(self):
        """The Event-payload refactor retired the last committed debt
        (the generation-capture closures in the core dispatch path), so
        the strict ratchet is at zero: any new finding must be fixed,
        not baselined."""
        allowed = load_baseline(DEFAULT_BASELINE, frozenset(KERN_RULES))
        assert not allowed

    def test_cli_default_run_is_green(self, capsys):
        assert kernel_main([str(REPO / "src" / "repro")]) == 0
