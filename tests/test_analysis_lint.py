"""Unit tests for the determinism linter (:mod:`repro.analysis.lint`).

Each rule gets a positive case (the violation fires), a suppressed case
(``# sim-lint: ignore[...]`` silences it) and, where relevant, a clean
case showing the exemptions work.  The mutation tests at the bottom are
the acceptance check: injecting a real determinism bug into a copy of
``speed_balancer.py`` must be caught.
"""

import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis.lint import (
    DEFAULT_ALLOWLIST,
    RULES,
    lint_paths,
    lint_source,
    load_allowlist,
)
from repro.analysis.lint import main as lint_main

#: a path inside a scheduling-decision directory (SIM001 applies) ...
DECISION = Path("src/repro/balance/fake.py")
#: ... and one outside (SIM001 does not)
PLAIN = Path("src/repro/harness/fake.py")


def rule_ids(source: str, path: Path = DECISION) -> list[str]:
    return [f.rule for f in lint_source(textwrap.dedent(source), path)]


class TestSim001SetIteration:
    def test_set_literal_for_loop(self):
        assert rule_ids("for x in {1, 2, 3}:\n    pass\n") == ["SIM001"]

    def test_dict_keys_view(self):
        assert rule_ids("for k in table.keys():\n    pass\n") == ["SIM001"]

    def test_set_call(self):
        assert rule_ids("for c in set(cores):\n    pass\n") == ["SIM001"]

    def test_name_inferred_from_assignment(self):
        src = "pool = set(cores)\nfor c in pool:\n    pass\n"
        assert rule_ids(src) == ["SIM001"]

    def test_name_inferred_from_annotation(self):
        src = """\
        def pick(cores: set[int]):
            for c in cores:
                pass
        """
        assert rule_ids(src) == ["SIM001"]

    def test_self_attribute_inferred(self):
        src = """\
        class B:
            def __init__(self):
                self.pool = set()

            def scan(self):
                for c in self.pool:
                    pass
        """
        assert rule_ids(src) == ["SIM001"]

    def test_comprehension_flagged(self):
        assert rule_ids("xs = [c for c in {1, 2}]\n") == ["SIM001"]

    def test_order_preserving_wrapper_still_flagged(self):
        assert rule_ids("for c in list({1, 2}):\n    pass\n") == ["SIM001"]

    def test_sorted_is_clean(self):
        assert rule_ids("for c in sorted({1, 2}):\n    pass\n") == []

    def test_non_decision_module_exempt(self):
        assert rule_ids("for x in {1, 2}:\n    pass\n", PLAIN) == []

    def test_suppression_comment(self):
        src = "for x in {1, 2}:  # sim-lint: ignore[SIM001]\n    pass\n"
        assert rule_ids(src) == []

    def test_bare_ignore_suppresses(self):
        src = "for x in {1, 2}:  # sim-lint: ignore\n    pass\n"
        assert rule_ids(src) == []


class TestSim002GlobalRandom:
    def test_import_random(self):
        assert rule_ids("import random\n", PLAIN) == ["SIM002"]

    def test_from_random_import(self):
        assert rule_ids("from random import shuffle\n", PLAIN) == ["SIM002"]

    def test_numpy_random(self):
        assert rule_ids("from numpy import random\n", PLAIN) == ["SIM002"]

    def test_call_on_alias_flagged_too(self):
        src = "import random as rnd\nx = rnd.randint(0, 3)\n"
        assert rule_ids(src, PLAIN) == ["SIM002", "SIM002"]

    def test_suppression_comment(self):
        src = "import random  # sim-lint: ignore[SIM002]\n"
        assert rule_ids(src, PLAIN) == []


class TestSim003WallClock:
    def test_time_time_call(self):
        src = "import time\nt = time.time()\n"
        assert rule_ids(src, PLAIN) == ["SIM003"]

    def test_from_time_import_monotonic(self):
        assert rule_ids("from time import monotonic\n", PLAIN) == ["SIM003"]

    def test_datetime_now(self):
        src = "from datetime import datetime\nts = datetime.now()\n"
        assert rule_ids(src, PLAIN) == ["SIM003"]

    def test_plain_import_time_is_clean(self):
        # importing the module is fine (time.sleep etc. in harness code);
        # only wall-clock reads are flagged
        assert rule_ids("import time\n", PLAIN) == []

    def test_suppression_comment(self):
        src = "import time\nt = time.time()  # sim-lint: ignore[SIM003]\n"
        assert rule_ids(src, PLAIN) == []


class TestSim004FloatTimestamps:
    def test_true_division_on_now(self):
        assert rule_ids("x = engine.now / 2\n", PLAIN) == ["SIM004"]

    def test_float_of_timestamp(self):
        assert rule_ids("x = float(self.engine.now)\n", PLAIN) == ["SIM004"]

    def test_float_delay_to_schedule(self):
        assert rule_ids("eng.schedule(1.5, cb)\n", PLAIN) == ["SIM004"]

    def test_division_inside_schedule_delay(self):
        assert rule_ids("eng.schedule(iv / 2, cb)\n", PLAIN) == ["SIM004"]

    def test_int_coercion_is_clean(self):
        assert rule_ids("eng.schedule(int(iv / 2), cb)\n", PLAIN) == []

    def test_floor_division_is_clean(self):
        assert rule_ids("x = engine.now // 2\n", PLAIN) == []

    def test_suppression_comment(self):
        src = "x = engine.now / 2  # sim-lint: ignore[SIM004]\n"
        assert rule_ids(src, PLAIN) == []


class TestSim005MutableDefaults:
    def test_list_default(self):
        assert rule_ids("def f(x=[]):\n    pass\n", PLAIN) == ["SIM005"]

    def test_dict_and_set_call_defaults(self):
        src = "def f(x={}, *, y=set()):\n    pass\n"
        assert rule_ids(src, PLAIN) == ["SIM005", "SIM005"]

    def test_lambda_default(self):
        assert rule_ids("f = lambda x=[]: x\n", PLAIN) == ["SIM005"]

    def test_none_default_is_clean(self):
        assert rule_ids("def f(x=None, y=0, z=()):\n    pass\n", PLAIN) == []

    def test_suppression_comment(self):
        src = "def f(x=[]):  # sim-lint: ignore[SIM005]\n    pass\n"
        assert rule_ids(src, PLAIN) == []


class TestSuppressionAndAllowlist:
    def test_skip_file_marker(self):
        src = "# sim-lint: skip-file\nimport random\nfor x in {1}:\n    pass\n"
        assert rule_ids(src) == []

    def test_ignore_wrong_rule_does_not_suppress(self):
        src = "import random  # sim-lint: ignore[SIM001]\n"
        assert rule_ids(src, PLAIN) == ["SIM002"]

    def test_syntax_error_reported_not_raised(self):
        findings = lint_source("def broken(:\n", PLAIN)
        assert [f.rule for f in findings] == ["SIM000"]

    def test_load_allowlist(self, tmp_path):
        f = tmp_path / "allow.txt"
        f.write_text("# comment\n\nSIM002  repro/sim/rng.py  # trailing\n")
        assert load_allowlist(f) == [("SIM002", "repro/sim/rng.py")]

    def test_load_allowlist_rejects_garbage(self, tmp_path):
        f = tmp_path / "allow.txt"
        f.write_text("NOTARULE foo.py\n")
        with pytest.raises(ValueError):
            load_allowlist(f)

    def test_allowlist_silences_whole_file(self, tmp_path):
        mod = tmp_path / "repro" / "sim" / "rng.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("import random\n")
        hit = lint_paths([mod], allowlist=[])
        assert [f.rule for f in hit] == ["SIM002"]
        assert lint_paths([mod], allowlist=[("SIM002", "repro/sim/rng.py")]) == []

    def test_shipped_allowlist_is_minimal(self):
        entries = load_allowlist(DEFAULT_ALLOWLIST)
        assert entries == [
            ("SIM002", "repro/sim/rng.py"),        # the sanctioned rng wrapper
            ("SIM003", "repro/harness/bench.py"),  # wall-clock measurement harness
        ]
        # policy: decision-path modules are never excused
        for _, glob in entries:
            assert "repro/core/" not in glob and "repro/balance/" not in glob


class TestRepoIsClean:
    def test_installed_package_lints_clean(self):
        pkg = Path(repro.__file__).resolve().parent
        findings = lint_paths([pkg])
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_rule_catalogue_complete(self):
        assert sorted(RULES) == [
            "SIM001", "SIM002", "SIM003", "SIM004", "SIM005", "SIM006",
            "SIM007",
        ]


class TestCli:
    def test_exit_zero_on_clean_file(self, tmp_path, capsys):
        f = tmp_path / "ok.py"
        f.write_text("x = 1\n")
        assert lint_main([str(f)]) == 0

    def test_exit_one_and_report_on_findings(self, tmp_path, capsys):
        f = tmp_path / "bad.py"
        f.write_text("import random\n")
        assert lint_main([str(f)]) == 1
        out = capsys.readouterr().out
        assert "SIM002" in out and "bad.py:1:" in out

    def test_select_filters_rules(self, tmp_path, capsys):
        f = tmp_path / "bad.py"
        f.write_text("import random\ndef f(x=[]):\n    pass\n")
        assert lint_main([str(f), "--select", "SIM005"]) == 1
        out = capsys.readouterr().out
        assert "SIM005" in out and "SIM002" not in out

    def test_format_json(self, tmp_path, capsys):
        import json

        f = tmp_path / "bad.py"
        f.write_text("import random\ndef g(x=[]):\n    pass\n")
        assert lint_main([str(f), "--format", "json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert sorted(d["rule"] for d in data) == ["SIM002", "SIM005"]
        assert all(d["path"] == str(f) for d in data)

    def test_no_allowlist_flags_the_sanctioned_rng(self, capsys):
        rng = Path(repro.__file__).resolve().parent / "sim" / "rng.py"
        assert lint_main([str(rng), "--no-allowlist"]) == 1
        assert "SIM002" in capsys.readouterr().out
        capsys.readouterr()
        assert lint_main([str(rng)]) == 0  # shipped allowlist sanctions it


class TestMutationCatches:
    """Acceptance check: seeded determinism bugs in the real balancer."""

    @pytest.fixture
    def balancer_source(self) -> str:
        path = Path(repro.__file__).resolve().parent / "core" / "speed_balancer.py"
        return path.read_text()

    def test_injected_set_iteration_is_caught(self, balancer_source):
        target = "for k in self.requested_cores or []:"
        assert target in balancer_source
        mutated = balancer_source.replace(
            target, "for k in set(self.requested_cores or []):"
        )
        findings = lint_source(mutated, Path("src/repro/core/speed_balancer.py"))
        assert any(f.rule == "SIM001" for f in findings)
        # the pristine source is clean, so the finding is the mutation
        assert lint_source(balancer_source, Path("src/repro/core/speed_balancer.py")) == []

    def test_injected_float_timestamp_is_caught(self, balancer_source):
        target = "now - self.last_migration_at.get(dst,"
        assert target in balancer_source
        mutated = balancer_source.replace(
            target, "now / 1 - self.last_migration_at.get(dst,"
        )
        findings = lint_source(mutated, Path("src/repro/core/speed_balancer.py"))
        assert any(f.rule == "SIM004" for f in findings)


class TestSim006FsIteration:
    """Unordered filesystem enumeration in harness/analysis modules."""

    HARNESS = Path("src/repro/harness/fake.py")

    def test_os_listdir(self):
        src = "import os\nnames = os.listdir('runs')\n"
        assert rule_ids(src, self.HARNESS) == ["SIM006"]

    def test_glob_module(self):
        src = "import glob\nhits = glob.glob('*.json')\n"
        assert rule_ids(src, self.HARNESS) == ["SIM006"]

    def test_path_iterdir_and_rglob(self):
        src = """\
        from pathlib import Path
        for p in Path('.').iterdir():
            pass
        files = list(Path('.').rglob('*.py'))
        """
        assert rule_ids(src, self.HARNESS) == ["SIM006", "SIM006"]

    def test_from_import_alias(self):
        src = "from os import listdir as ls\nnames = ls('runs')\n"
        assert rule_ids(src, self.HARNESS) == ["SIM006"]

    def test_sorted_wrapper_is_exempt(self):
        src = """\
        import os, glob
        from pathlib import Path
        a = sorted(os.listdir('runs'))
        b = sorted(glob.glob('*.json'))
        c = sorted(Path('.').rglob('*.py'))
        """
        assert rule_ids(src, self.HARNESS) == []

    def test_out_of_scope_module_is_exempt(self):
        src = "import os\nnames = os.listdir('runs')\n"
        assert rule_ids(src, Path("src/repro/sim/fake.py")) == []

    def test_analysis_dir_in_scope(self):
        src = "import os\nnames = os.listdir('runs')\n"
        assert rule_ids(src, Path("src/repro/analysis/fake.py")) == ["SIM006"]

    def test_suppression_comment(self):
        src = (
            "import os\n"
            "names = os.listdir('runs')  # sim-lint: ignore[SIM006]\n"
        )
        assert rule_ids(src, self.HARNESS) == []

    def test_unrelated_name_not_flagged(self):
        src = "names = listdir('runs')\n"  # not imported from os
        assert rule_ids(src, self.HARNESS) == []


class TestSim007AggregateSweeps:
    """O(n) aggregate recomputation in sched/ and core/ hot modules."""

    HOT = Path("src/repro/sched/fake.py")
    CORE = Path("src/repro/core/fake.py")

    def test_sum_over_rq_tasks(self):
        src = "w = sum(t.weight for t in self.rq.tasks())\n"
        assert rule_ids(src, self.HOT) == ["SIM007"]

    def test_max_over_rq_tasks(self):
        src = "v = max(t.vruntime for t in rq.tasks())\n"
        assert rule_ids(src, self.HOT) == ["SIM007"]

    def test_full_core_sweep_direct_arg(self):
        src = "busiest = max(self.system.cores, key=lambda c: c.nr_running)\n"
        assert rule_ids(src, self.CORE) == ["SIM007"]

    def test_listcomp_over_runnable_tasks(self):
        src = "n = sum([1 for t in core.runnable_tasks()])\n"
        assert rule_ids(src, self.CORE) == ["SIM007"]

    def test_any_over_cores(self):
        src = "busy = any(c.current is not None for c in cores)\n"
        assert rule_ids(src, self.HOT) == ["SIM007"]

    def test_scalar_min_max_exempt(self):
        src = (
            "a = min(slice_us, yield_check_us)\n"
            "b = max(1, run_for)\n"
            "c = max(task.vruntime, self.rq.max_vruntime())\n"
        )
        assert rule_ids(src, self.HOT) == []

    def test_local_collections_exempt(self):
        src = "avg = sum(speeds) / len(speeds)\n"
        assert rule_ids(src, self.CORE) == []

    def test_out_of_scope_dirs_exempt(self):
        src = "w = sum(t.weight for t in self.rq.tasks())\n"
        assert rule_ids(src, Path("src/repro/balance/fake.py")) == []
        assert rule_ids(src, Path("src/repro/harness/fake.py")) == []

    def test_suppression_comment(self):
        src = (
            "w = sum(t.weight for t in self.rq.tasks())"
            "  # sim-lint: ignore[SIM007]\n"
        )
        assert rule_ids(src, self.HOT) == []

    def test_allowlist_policy_keeps_hot_dirs_at_zero(self):
        # the shipped allowlist must not excuse SIM007 anywhere under
        # the hot scheduling directories
        for rule, glob in load_allowlist(DEFAULT_ALLOWLIST):
            if rule == "SIM007":
                assert "repro/sched/" not in glob and "repro/core/" not in glob
