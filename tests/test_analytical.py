"""Tests for the Section 4 analytical model, incl. property-based checks."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import analytical as an


class TestQueueShape:
    def test_balanced(self):
        s = an.queue_shape(16, 4)
        assert (s.t, s.fq, s.sq) == (4, 4, 0)

    def test_paper_example_three_on_two(self):
        s = an.queue_shape(3, 2)
        assert (s.t, s.fq, s.sq) == (1, 1, 1)

    def test_sixteen_on_twelve(self):
        s = an.queue_shape(16, 12)
        assert (s.t, s.fq, s.sq) == (1, 8, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            an.queue_shape(0, 4)
        with pytest.raises(ValueError):
            an.queue_shape(4, 0)


class TestLemma1:
    def test_balanced_needs_no_steps(self):
        assert an.lemma1_steps_bound(16, 4) == 0

    def test_undersubscribed_needs_no_steps(self):
        assert an.lemma1_steps_bound(3, 8) == 0

    def test_three_on_two(self):
        # SQ=1, FQ=1 -> 2 steps
        assert an.lemma1_steps_bound(3, 2) == 2

    def test_fq_less_than_sq(self):
        # N=2M-1: SQ=M-1, FQ=1 -> 2*(M-1)
        assert an.lemma1_steps_bound(19, 10) == 18

    def test_fq_geq_sq_always_two(self):
        # "for FQ >= SQ two steps are needed"
        assert an.lemma1_steps_bound(17, 16) == 2
        assert an.lemma1_steps_bound(22, 16) == 2


class TestProfitabilityThreshold:
    def test_balanced_is_free(self):
        assert an.min_profitable_s(16, 8) == 0.0

    def test_three_on_two(self):
        # (T+1)*S > 2*B with T=1 -> S > B
        assert an.min_profitable_s(3, 2, b=1.0) == pytest.approx(1.0)

    def test_scales_with_b(self):
        assert an.min_profitable_s(3, 2, b=0.1) == pytest.approx(0.1)

    def test_more_threads_lower_threshold(self):
        """'increasing the number of threads decreases the restrictions
        on the minimum value of S' (for fixed cores)."""
        m = 10
        s_few = an.min_profitable_s(12, m)
        s_many = an.min_profitable_s(52, m)
        assert s_many < s_few

    def test_diagonal_worst_case(self):
        """'few (two) threads per core and a large number of slow cores'"""
        m = 50
        worst = an.min_profitable_s(2 * m - 1, m)
        typical = an.min_profitable_s(m + 1, m)
        assert worst > 10 * typical


class TestFigure1Grid:
    def test_grid_shape(self):
        cores, threads, grid = an.figure1_grid(range(10, 21), range(10, 41))
        assert grid.shape == (len(threads), len(cores))

    def test_majority_below_one(self):
        """'In the majority of cases S <= 1'"""
        _, _, grid = an.figure1_grid(range(10, 101, 10), range(10, 401, 10))
        positive = grid[grid > 0]
        frac = (positive <= 1.0).mean()
        assert frac > 0.5

    def test_undersubscribed_zero(self):
        cores, threads, grid = an.figure1_grid([20], [10])
        assert grid[0, 0] == 0.0

    def test_data_range_spans_paper_magnitudes(self):
        """Paper: 'the actual data range is [0.015, 147]' -- ours must
        span comparable orders of magnitude over the same axes."""
        _, _, grid = an.figure1_grid(range(10, 101), range(10, 401))
        positive = grid[grid > 0]
        # paper quotes [0.015, 147] on its (unstated) grid; ours must
        # span comparable orders of magnitude on comparable axes
        assert positive.min() <= 0.05
        assert positive.max() >= 50


class TestSpeedFormulas:
    def test_linux_speed_slowest_thread(self):
        # 3 threads 2 cores: slowest runs at 1/2
        assert an.average_speed_linux(3, 2) == pytest.approx(0.5)

    def test_linux_speed_balanced(self):
        assert an.average_speed_linux(4, 2) == pytest.approx(0.5)

    def test_ideal_speed_is_capacity_share(self):
        assert an.average_speed_ideal(3, 2) == pytest.approx(2 / 3)

    def test_ideal_never_above_one(self):
        assert an.average_speed_ideal(2, 8) == 1.0

    def test_paper_asymptotic_speed_t1(self):
        """(1/2)(1/T + 1/(T+1)) = 0.75 for T=1."""
        assert an.paper_asymptotic_speed(1) == pytest.approx(0.75)

    def test_paper_asymptotic_above_capacity_share(self):
        """The paper's rotation ideal is optimistic: it exceeds the
        capacity-feasible average M/N whenever queues are unbalanced."""
        n, m = 6, 4  # T=1, SQ=2, FQ=2
        assert an.paper_asymptotic_speed(1) > an.average_speed_ideal(n, m)

    def test_paper_potential_speedup_formula(self):
        """'a possible speedup of 1 + 1/(2T)'"""
        for t in (1, 2, 5, 10):
            assert an.paper_potential_speedup(t) == pytest.approx(1 + 1 / (2 * t))

    def test_paper_asymptotic_validation(self):
        with pytest.raises(ValueError):
            an.paper_asymptotic_speed(0)

    def test_potential_speedup_three_on_two(self):
        # paper Section 3: 50% -> 66%, a 4/3 speedup
        assert an.potential_speedup(3, 2) == pytest.approx(4 / 3)


class TestConstructiveSimulation:
    def test_balanced_zero_steps(self):
        assert an.simulate_balancing_steps(16, 4) == 0

    def test_three_on_two_within_bound(self):
        assert an.simulate_balancing_steps(3, 2) <= 2

    @given(
        m=st.integers(min_value=1, max_value=40),
        extra=st.integers(min_value=1, max_value=80),
    )
    @settings(max_examples=200, deadline=None)
    def test_lemma1_bound_holds(self, m, extra):
        """Property: the constructive algorithm never exceeds the bound."""
        n = m + extra
        steps = an.simulate_balancing_steps(n, m)
        assert steps <= an.lemma1_steps_bound(n, m)

    @given(
        m=st.integers(min_value=2, max_value=30),
        n=st.integers(min_value=2, max_value=200),
    )
    @settings(max_examples=200, deadline=None)
    def test_bound_formula_consistency(self, m, n):
        """The bound is 2*ceil(SQ/FQ) whenever there is an imbalance."""
        bound = an.lemma1_steps_bound(n, m)
        if n <= m or n % m == 0:
            assert bound == 0
        else:
            sq = n % m
            fq = m - sq
            assert bound == 2 * math.ceil(sq / fq)

    @given(
        m=st.integers(min_value=2, max_value=30),
        n=st.integers(min_value=3, max_value=200),
        b=st.floats(min_value=0.01, max_value=10.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_min_s_scales_linearly_in_b(self, m, n, b):
        s1 = an.min_profitable_s(n, m, 1.0)
        sb = an.min_profitable_s(n, m, b)
        assert sb == pytest.approx(s1 * b)
