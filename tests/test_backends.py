"""The pluggable event-dispatch backends (repro.sim.backends).

The batched calendar-queue backend claims bit-identical behaviour to
the heap engine.  The scenario golden digests enforce that end to end;
these tests pin the per-primitive semantics the claim rests on --
same-time FIFO order, lazy cancellation, ``until``/``stop``/``step``
edge cases, compaction -- plus a randomized differential harness that
drives both backends through identical schedule/cancel churn and
compares every observable.
"""

import gc
import random

import pytest

from repro.sim.backends import (
    ENGINE_BACKENDS,
    BatchedEngine,
    HeapEngine,
    NativeEngine,
    backend_available,
    backend_names,
    make_engine,
)
from repro.sim.engine import Engine, SimulationError

needs_native = pytest.mark.skipif(
    not backend_available("native"),
    reason="native backend unavailable (no C toolchain)",
)


class TestRegistry:
    def test_backend_names_default_first(self):
        assert backend_names() == ("heap", "batched", "native")

    def test_make_engine_types(self):
        assert type(make_engine("heap")) is HeapEngine
        assert type(make_engine("batched")) is BatchedEngine

    @needs_native
    def test_make_engine_native_type(self):
        assert type(make_engine("native")) is NativeEngine

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown engine backend"):
            make_engine("btree")

    def test_backend_available(self):
        assert backend_available("heap")
        assert backend_available("batched")
        assert not backend_available("btree")

    def test_batching_flags(self):
        # the heap default must keep the memo fast paths disarmed
        assert HeapEngine.batching is False
        assert Engine.batching is False
        assert BatchedEngine.batching is True

    def test_all_backends_are_engines(self):
        for cls in ENGINE_BACKENDS.values():
            assert issubclass(cls, Engine)


class TestBatchedSemantics:
    def test_same_time_events_fire_in_seq_order(self):
        eng = make_engine("batched")
        fired = []
        for i in range(5):
            eng.schedule(10, lambda i=i: fired.append(i))
        eng.schedule(5, lambda: fired.append("early"))
        eng.run()
        assert fired == ["early", 0, 1, 2, 3, 4]

    def test_callback_scheduling_at_now_extends_the_batch(self):
        eng = make_engine("batched")
        fired = []

        def first():
            fired.append("first")
            eng.schedule(0, lambda: fired.append("appended"))

        eng.schedule(3, first)
        eng.schedule(3, lambda: fired.append("second"))
        eng.run()
        # the zero-delay event lands behind everything already queued
        # for t=3, exactly as the heap's (time, seq) order dictates
        assert fired == ["first", "second", "appended"]

    def test_schedule_in_past_raises(self):
        eng = make_engine("batched")
        with pytest.raises(SimulationError):
            eng.schedule(-1, lambda: None)
        eng.schedule(5, lambda: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.schedule_at(4, lambda: None)

    def test_cancel_is_lazy_and_pending_is_exact(self):
        eng = make_engine("batched")
        fired = []
        events = [eng.schedule(7, lambda i=i: fired.append(i)) for i in range(4)]
        assert eng.pending == 4
        events[1].cancel()
        events[2].cancel()
        events[2].cancel()  # idempotent
        assert eng.pending == 2
        eng.run()
        assert fired == [0, 3]
        assert eng.pending == 0
        assert eng.dispatched == 2

    def test_compaction_preserves_order_and_counts(self):
        eng = make_engine("batched")
        fired = []
        keep = []
        cancelled = []
        # enough churn to cross the compaction threshold several times
        for i in range(300):
            ev = eng.schedule(10 + (i % 10), lambda i=i: fired.append(i))
            (keep if i % 3 == 0 else cancelled).append(ev)
        for ev in cancelled:
            ev.cancel()
        assert eng.pending == len(keep)
        eng.run()
        survivors = [i for i in range(300) if i % 3 == 0]
        # within each timestamp the survivors keep insertion order, and
        # timestamps drain smallest first
        expected = sorted(survivors, key=lambda i: (10 + (i % 10), i))
        assert fired == expected

    def test_peek_time_skips_cancelled(self):
        eng = make_engine("batched")
        early = eng.schedule(2, lambda: None)
        eng.schedule(9, lambda: None)
        assert eng.peek_time() == 2
        early.cancel()
        assert eng.peek_time() == 9

    def test_run_until_advances_clock_between_buckets(self):
        eng = make_engine("batched")
        fired = []
        eng.schedule(5, lambda: fired.append(5))
        eng.schedule(20, lambda: fired.append(20))
        eng.run(until=12)
        assert fired == [5]
        assert eng.now == 12
        eng.run()
        assert fired == [5, 20]

    def test_stop_mid_batch_leaves_rest_of_bucket(self):
        eng = make_engine("batched")
        fired = []
        eng.schedule(4, lambda: fired.append("a"))
        eng.schedule(4, eng.stop)
        eng.schedule(4, lambda: fired.append("b"))
        eng.run()
        assert fired == ["a"]
        eng.run()
        assert fired == ["a", "b"]

    def test_step_dispatches_exactly_one(self):
        eng = make_engine("batched")
        fired = []
        eng.schedule(1, lambda: fired.append("x"))
        eng.schedule(1, lambda: fired.append("y"))
        assert eng.step() is True
        assert fired == ["x"]
        assert eng.step() is True
        assert eng.step() is False
        assert fired == ["x", "y"]

    def test_max_events_limit(self):
        eng = make_engine("batched", max_events=10)

        def forever():
            eng.schedule(1, forever)

        eng.schedule(0, forever)
        with pytest.raises(SimulationError, match="event limit exceeded"):
            eng.run()

    def test_gc_restored_after_run_and_after_raise(self):
        assert gc.isenabled()
        eng = make_engine("batched")
        eng.schedule(1, lambda: None)
        eng.run()
        assert gc.isenabled()
        eng2 = make_engine("batched", max_events=1)
        eng2.schedule(0, lambda: eng2.schedule(1, lambda: None))
        eng2.schedule(2, lambda: None)
        with pytest.raises(SimulationError):
            eng2.run()
        assert gc.isenabled()

    def test_observers_see_every_live_event(self):
        eng = make_engine("batched")
        seen = []
        eng.observers.append(lambda ev: seen.append(ev.label))
        eng.schedule(1, lambda: None, label="a")
        dead = eng.schedule(1, lambda: None, label="dead")
        eng.schedule(2, lambda: None, label="b")
        dead.cancel()
        eng.run()
        assert seen == ["a", "b"]


def _churn(eng, seed, n=400):
    """Drive one backend through seeded schedule/cancel/stop churn.

    Pure function of ``seed``: both backends see byte-identical call
    sequences, so every observable (dispatch order, clock, counters)
    must agree.
    """
    rng = random.Random(seed)
    fired = []
    live = []

    def cb(tag):
        fired.append((eng.now, tag))
        for _ in range(rng.randrange(3)):
            tag2 = len(fired) * 1000 + rng.randrange(100)
            live.append(eng.schedule(rng.randrange(6), cb.__wrapped__(tag2)))
        if live and rng.random() < 0.3:
            live.pop(rng.randrange(len(live))).cancel()

    # small indirection so inner callbacks capture their tag eagerly
    cb.__wrapped__ = lambda tag: (lambda: cb(tag))

    for i in range(n):
        live.append(eng.schedule(rng.randrange(50), cb.__wrapped__(i)))
    eng.run(until=30)
    eng.step()
    eng.run()
    return fired


class TestDifferentialParity:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_heap_and_batched_agree_under_churn(self, seed):
        heap_eng = make_engine("heap")
        batched_eng = make_engine("batched")
        a = _churn(heap_eng, seed)
        b = _churn(batched_eng, seed)
        assert a == b
        assert heap_eng.fingerprint() == batched_eng.fingerprint()
        assert heap_eng.pending == batched_eng.pending

    @needs_native
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_heap_and_native_agree_under_churn(self, seed):
        heap_eng = make_engine("heap")
        native_eng = make_engine("native")
        a = _churn(heap_eng, seed)
        b = _churn(native_eng, seed)
        assert a == b
        assert heap_eng.fingerprint() == native_eng.fingerprint()
        assert heap_eng.pending == native_eng.pending

    def test_until_purge_keeps_pending_in_agreement(self):
        # cancelled events *past* until are purged while they lead the
        # queue; every backend must report the same pending afterwards
        engines = [make_engine(n) for n in backend_names()
                   if backend_available(n)]
        for eng in engines:
            eng.schedule(5, lambda: None)
            doomed = [eng.schedule(40, lambda: None) for _ in range(3)]
            eng.schedule(50, lambda: None)
            for ev in doomed:
                ev.cancel()
            eng.run(until=10)
        assert len({eng.pending for eng in engines}) == 1
        assert {eng.now for eng in engines} == {10}


class TestNativeBackend:
    """The compiled backend's build/cache/fallback machinery.

    Digest parity and churn parity are enforced above and in the golden
    scenario wall; these tests pin the toolchain-facing behaviour: the
    artifact cache makes the compile a one-time cost, machines without
    a compiler degrade to a clear error (and the rest of the suite
    skips), and the fused C path is actually exercised rather than
    silently falling back to generic dispatch.
    """

    @needs_native
    def test_artifact_cached_second_construction_does_not_compile(
        self, monkeypatch, tmp_path
    ):
        from repro.sim.backends import nativebuild

        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        monkeypatch.setattr(nativebuild, "_loaded", {})
        compiles = []
        real_compile = nativebuild._compile

        def counting_compile(cc, out_path):
            compiles.append(out_path)
            return real_compile(cc, out_path)

        monkeypatch.setattr(nativebuild, "_compile", counting_compile)
        NativeEngine()
        assert len(compiles) == 1
        # the process-level dict was cleared, so this exercises the
        # on-disk artifact path: dlopen, no compiler invocation
        monkeypatch.setattr(nativebuild, "_loaded", {})
        NativeEngine()
        assert len(compiles) == 1

    def test_no_toolchain_raises_native_unavailable(self, monkeypatch):
        from repro.sim.backends import NativeUnavailableError, nativebuild

        monkeypatch.setattr(nativebuild, "_find_compiler", lambda: None)
        monkeypatch.setattr(nativebuild, "_loaded", {})
        monkeypatch.setenv("REPRO_NATIVE_CACHE", "/nonexistent/never-here")
        with pytest.raises(NativeUnavailableError, match="C compiler"):
            NativeEngine()
        assert nativebuild.native_available() is False
        assert backend_available("native") is False

    @needs_native
    def test_fused_path_is_exercised(self):
        from repro.harness.scenarios import scenario_smokes
        from repro.sim.backends.nativebuild import native_stats

        before = native_stats()
        scenario_smokes()["ep-speedup"].run(engine="native")
        after = native_stats()
        fused = after["fused"] - before["fused"]
        generic = after["generic"] - before["generic"]
        # the CFS core event dominates every scenario; if the C twin
        # stopped matching the dispatch signature this would collapse
        # to zero while digests stayed green via the Python fallback
        assert fused > generic
        assert fused > 0

    @needs_native
    def test_step_falls_back_to_python_single_dispatch(self):
        eng = make_engine("native")
        fired = []
        eng.schedule(1, lambda: fired.append("x"))
        eng.schedule(1, lambda: fired.append("y"))
        assert eng.step() is True
        assert fired == ["x"]
        eng.run()
        assert fired == ["x", "y"]

    @needs_native
    def test_callback_exception_propagates(self):
        eng = make_engine("native")

        def boom():
            raise RuntimeError("callback exploded")

        eng.schedule(1, boom)
        with pytest.raises(RuntimeError, match="callback exploded"):
            eng.run()

    @needs_native
    def test_max_events_limit_native(self):
        eng = make_engine("native", max_events=10)

        def forever():
            eng.schedule(1, forever)

        eng.schedule(0, forever)
        with pytest.raises(SimulationError, match="event limit exceeded"):
            eng.run()

    @needs_native
    def test_observers_see_every_live_event_native(self):
        eng = make_engine("native")
        seen = []
        eng.observers.append(lambda ev: seen.append(ev.label))
        eng.schedule(1, lambda: None, label="a")
        dead = eng.schedule(1, lambda: None, label="dead")
        eng.schedule(2, lambda: None, label="b")
        dead.cancel()
        eng.run()
        assert seen == ["a", "b"]
