"""Unit tests for the base/none/pinned balancers' placement logic."""

import pytest

from repro.balance.base import NoBalancer
from repro.balance.pinned import PinnedBalancer
from repro.sched.task import Task
from repro.system import System
from repro.topology import presets

from tests.test_core_sim import OneShot


class TestBasePlacement:
    def test_least_loaded_snapshot_wins(self):
        system = System(presets.uniform(4), seed=0)
        system.set_balancer(NoBalancer())
        t = Task(program=OneShot(1000))
        assert system.kernel_balancer.place_new_task(t, [2, 0, 1, 3]) == 1

    def test_random_tie_break_spreads(self):
        system = System(presets.uniform(8), seed=1)
        system.set_balancer(NoBalancer())
        picks = {
            system.kernel_balancer.place_new_task(Task(), [0] * 8)
            for _ in range(40)
        }
        assert len(picks) > 3  # ties are broken randomly, not first-core

    def test_affinity_restricts_placement(self):
        system = System(presets.uniform(4), seed=0)
        system.set_balancer(NoBalancer())
        t = Task()
        t.pin({2, 3})
        assert system.kernel_balancer.place_new_task(t, [0, 0, 5, 4]) == 3

    def test_wake_placement_defaults_to_prev(self):
        system = System(presets.uniform(4), seed=0)
        system.set_balancer(NoBalancer())
        assert system.kernel_balancer.place_woken(Task(), 2) == 2


class TestPinnedPlacement:
    def test_round_robin_in_creation_order(self):
        system = System(presets.uniform(4), seed=0)
        system.set_balancer(PinnedBalancer())
        tasks = [Task(name=f"t{i}") for i in range(6)]
        placements = [
            system.kernel_balancer.place_new_task(t, [0] * 4) for t in tasks
        ]
        assert placements == [0, 1, 2, 3, 0, 1]

    def test_tasks_become_pinned(self):
        system = System(presets.uniform(4), seed=0)
        system.set_balancer(PinnedBalancer())
        t = Task()
        cid = system.kernel_balancer.place_new_task(t, [0] * 4)
        assert t.allowed_cores == frozenset({cid})

    def test_separate_rotation_per_affinity_mask(self):
        system = System(presets.uniform(4), seed=0)
        system.set_balancer(PinnedBalancer())
        narrow = [Task() for _ in range(2)]
        for t in narrow:
            t.pin({2, 3})
        wide = [Task() for _ in range(2)]
        n_placements = [
            system.kernel_balancer.place_new_task(t, [0] * 4) for t in narrow
        ]
        w_placements = [
            system.kernel_balancer.place_new_task(t, [0] * 4) for t in wide
        ]
        assert n_placements == [2, 3]
        assert w_placements == [0, 1]

    def test_pinned_never_migrates(self):
        system = System(presets.uniform(2), seed=0)
        system.set_balancer(PinnedBalancer())
        tasks = [Task(program=OneShot(200_000), name=f"t{i}") for i in range(4)]
        system.spawn_burst(tasks)
        system.run(until=400_000)
        assert system.total_migrations() == 0
