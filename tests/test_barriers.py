"""Unit tests for barrier semantics and wait policies."""

import pytest

from repro.apps.barriers import Barrier, WaitPolicy
from repro.balance.base import NoBalancer
from repro.sched.task import Action, Program, Task, TaskState, WaitMode
from repro.system import System
from repro.topology import presets


class PhaseProgram(Program):
    """iterations x (compute, barrier), then exit."""

    def __init__(self, barrier, work_us, iterations=1):
        self.barrier = barrier
        self.work_us = work_us
        self.iterations = iterations
        self._step = 0

    def next_action(self, task, now):
        step = self._step
        self._step += 1
        if step >= 2 * self.iterations:
            return Action.exit()
        if step % 2 == 0:
            return Action.compute(self.work_us)
        return Action.wait(self.barrier)


def build(n, mode, works, system=None, blocktime_us=None, iterations=1):
    system = system or System(presets.uniform(n), seed=0)
    if system.kernel_balancer is None:
        system.set_balancer(NoBalancer())
    policy = WaitPolicy(mode=mode, blocktime_us=blocktime_us)
    barrier = Barrier(system, parties=n, policy=policy, name="b")
    tasks = []
    for i, w in enumerate(works):
        t = Task(program=PhaseProgram(barrier, w, iterations), name=f"t{i}")
        t.pin({i})
        tasks.append(t)
    system.spawn_burst(tasks)
    return system, barrier, tasks


class TestWaitPolicy:
    def test_presets_modes(self):
        assert WaitPolicy.upc_default().mode == WaitMode.YIELD
        assert WaitPolicy.mpi_default().mode == WaitMode.YIELD
        assert WaitPolicy.upc_sleep().mode == WaitMode.SLEEP
        assert WaitPolicy.omp_infinite().mode == WaitMode.SPIN
        omp = WaitPolicy.omp_default()
        assert omp.mode == WaitMode.SPIN and omp.blocktime_us == 200_000

    def test_labels(self):
        assert WaitPolicy.upc_sleep().label == "sleep"
        assert WaitPolicy.omp_infinite().label == "spin"
        assert "blocktime200ms" in WaitPolicy.omp_default().label

    def test_parties_validation(self):
        system = System(presets.uniform(2), seed=0)
        with pytest.raises(ValueError):
            Barrier(system, parties=0)


class TestRelease:
    @pytest.mark.parametrize("mode", [WaitMode.SPIN, WaitMode.YIELD, WaitMode.SLEEP])
    def test_all_parties_proceed(self, mode):
        system, barrier, tasks = build(3, mode, [10_000, 20_000, 30_000])
        system.run()
        assert all(t.state == TaskState.FINISHED for t in tasks)
        assert barrier.generation == 1
        assert barrier.releases == 1

    def test_single_party_never_waits(self):
        system, barrier, tasks = build(1, WaitMode.SLEEP, [5_000])
        system.run()
        assert tasks[0].finished_at == 5_000
        assert barrier.releases == 1

    @pytest.mark.parametrize("mode", [WaitMode.SPIN, WaitMode.YIELD, WaitMode.SLEEP])
    def test_finish_gated_by_slowest(self, mode):
        system, _, tasks = build(2, mode, [1_000, 50_000])
        system.run()
        assert tasks[0].finished_at >= 50_000

    def test_reusable_across_generations(self):
        system, barrier, tasks = build(2, WaitMode.SLEEP, [5_000, 5_000], iterations=4)
        system.run()
        assert barrier.generation == 4
        assert all(t.state == TaskState.FINISHED for t in tasks)

    def test_wait_accounting_accumulates(self):
        system, barrier, _ = build(2, WaitMode.SLEEP, [1_000, 21_000])
        system.run()
        # the fast thread waited ~20ms
        assert barrier.total_wait_us == pytest.approx(20_000, rel=0.05)

    def test_sleep_wake_latency_applied(self):
        system = System(presets.uniform(2), seed=0)
        system.set_balancer(NoBalancer())
        policy = WaitPolicy(mode=WaitMode.SLEEP, wake_latency_us=5_000)
        barrier = Barrier(system, parties=2, policy=policy)
        tasks = []
        for i, w in enumerate([1_000, 11_000]):
            t = Task(program=PhaseProgram(barrier, w), name=f"t{i}")
            t.pin({i})
            tasks.append(t)
        system.spawn_burst(tasks)
        system.run()
        # fast sleeper resumes ~5ms after the release at 11ms
        assert tasks[0].finished_at >= 16_000

    def test_waiter_states_while_waiting(self):
        system, _, tasks = build(2, WaitMode.SLEEP, [1_000, 50_000])
        system.run(until=10_000)
        assert tasks[0].state == TaskState.SLEEPING
        assert tasks[0].waiting_on is not None
        system.run()
        assert tasks[0].waiting_on is None

    def test_yield_waiter_stays_runnable(self):
        system, _, tasks = build(2, WaitMode.YIELD, [1_000, 50_000])
        system.run(until=10_000)
        assert tasks[0].state in (TaskState.RUNNABLE, TaskState.RUNNING)
        assert system.cores[0].nr_running == 1  # counted as load!

    def test_sleep_waiter_off_runqueue(self):
        system, _, tasks = build(2, WaitMode.SLEEP, [1_000, 50_000])
        system.run(until=10_000)
        assert system.cores[0].nr_running == 0  # invisible to LOAD


class TestBlocktime:
    def test_spin_then_sleep_conversion(self):
        system, _, tasks = build(
            2, WaitMode.SPIN, [1_000, 100_000], blocktime_us=20_000
        )
        system.run(until=50_000)
        t = tasks[0]
        assert t.state == TaskState.SLEEPING
        # spun for the blocktime window, then stopped consuming CPU
        assert t.exec_us == pytest.approx(21_000, rel=0.1)
        system.run()
        assert t.state == TaskState.FINISHED

    def test_release_before_blocktime_expires(self):
        system, _, tasks = build(
            2, WaitMode.SPIN, [1_000, 5_000], blocktime_us=200_000
        )
        system.run()
        t = tasks[0]
        assert t.state == TaskState.FINISHED
        # never slept: release arrived during the spin window
        assert t.exec_us == pytest.approx(5_000, rel=0.1)

    def test_infinite_blocktime_never_sleeps(self):
        system, _, tasks = build(2, WaitMode.SPIN, [1_000, 60_000])
        system.run(until=50_000)
        assert tasks[0].state in (TaskState.RUNNABLE, TaskState.RUNNING)
        assert tasks[0].exec_us > 40_000


class TestOversubscribedBarrier:
    """Waiters and compute threads sharing cores."""

    def test_spin_waiter_steals_half_the_core(self):
        # t0 finishes fast and spins on core 0, where t2 computes:
        # spinning doubles t2's completion time.
        system = System(presets.uniform(2), seed=0)
        system.set_balancer(NoBalancer())
        barrier = Barrier(system, 3, WaitPolicy(mode=WaitMode.SPIN))
        works = [1_000, 1_000, 60_000]
        pins = [0, 1, 0]
        tasks = []
        for i, (w, p) in enumerate(zip(works, pins)):
            t = Task(program=PhaseProgram(barrier, w), name=f"t{i}")
            t.pin({p})
            tasks.append(t)
        system.spawn_burst(tasks)
        system.run()
        assert tasks[2].finished_at > 100_000

    def test_yield_waiter_barely_disturbs(self):
        system = System(presets.uniform(2), seed=0)
        system.set_balancer(NoBalancer())
        barrier = Barrier(system, 3, WaitPolicy(mode=WaitMode.YIELD))
        works = [1_000, 1_000, 60_000]
        pins = [0, 1, 0]
        tasks = []
        for i, (w, p) in enumerate(zip(works, pins)):
            t = Task(program=PhaseProgram(barrier, w), name=f"t{i}")
            t.pin({p})
            tasks.append(t)
        system.spawn_burst(tasks)
        system.run()
        assert tasks[2].finished_at < 80_000
