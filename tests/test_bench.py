"""Tests for the perf-trajectory harness (``repro bench``)."""

import json

import pytest

from repro.harness import bench


def fast_results():
    return [
        bench.BenchResult(name="engine_throughput", wall_s=0.5,
                          events=100_000, rounds=3),
        bench.BenchResult(name="ep_dedicated", wall_s=2.0,
                          events=5_000, rounds=3),
    ]


class TestRunBenches:
    def test_quick_suite_runs_every_case(self):
        seen = []
        results = bench.run_benches(quick=True, rounds=1,
                                    progress=lambda r: seen.append(r.name))
        assert [r.name for r in results] == bench.bench_names()
        assert seen == bench.bench_names()
        for r in results:
            assert r.wall_s > 0
            assert r.events > 0
            assert r.events_per_sec > 0

    def test_event_counts_are_deterministic(self):
        a = bench.run_benches(quick=True, rounds=1)
        b = bench.run_benches(quick=True, rounds=1)
        assert [r.events for r in a] == [r.events for r in b]

    def test_bad_rounds_rejected(self):
        with pytest.raises(ValueError, match="rounds"):
            bench.run_benches(quick=True, rounds=0)


class TestPayloads:
    def test_roundtrip(self, tmp_path):
        payload = bench.to_payload(fast_results(), label="t", quick=True)
        path = bench.write_payload(payload, out_dir=tmp_path)
        assert path.name == "BENCH_t.json"
        assert bench.load_payload(path) == payload

    def test_payload_shape(self):
        payload = bench.to_payload(fast_results(), label="x", quick=False)
        assert payload["schema"] == bench.BENCH_SCHEMA
        entry = payload["benches"]["engine_throughput"]
        assert entry["wall_s"] == 0.5
        assert entry["events"] == 100_000
        assert entry["events_per_sec"] == 200_000.0

    def test_unknown_schema_rejected(self, tmp_path):
        p = tmp_path / "BENCH_bad.json"
        p.write_text(json.dumps({"schema": 99, "benches": {}}))
        with pytest.raises(ValueError, match="schema"):
            bench.load_payload(p)

    @pytest.mark.parametrize("label", [
        "", "a b", "a/b", "../escape", "é", "a.b", "lab:el",
    ])
    def test_invalid_label_rejected(self, label):
        # labels become the BENCH_<label>.json filename
        with pytest.raises(ValueError, match="label"):
            bench.to_payload(fast_results(), label=label, quick=True)

    @pytest.mark.parametrize("label", ["ci", "base-line_2", "A1"])
    def test_valid_labels_accepted(self, label):
        assert bench.to_payload(fast_results(), label=label,
                                quick=True)["label"] == label


class TestCompare:
    @staticmethod
    def payload_with_wall(wall_s):
        return bench.to_payload(
            [bench.BenchResult(name="ep_dedicated", wall_s=wall_s,
                               events=1000, rounds=1)],
            label="t", quick=True)

    def payloads(self, old_wall, new_wall):
        return self.payload_with_wall(old_wall), self.payload_with_wall(new_wall)

    def test_within_threshold_ok(self):
        old, new = self.payloads(1.0, 1.2)
        (c,) = bench.compare_payloads(old, new, threshold_pct=25.0)
        assert not c.regressed
        assert c.delta_pct == pytest.approx(20.0)

    def test_beyond_threshold_regresses(self):
        old, new = self.payloads(1.0, 1.3)
        (c,) = bench.compare_payloads(old, new, threshold_pct=25.0)
        assert c.regressed

    def test_speedups_never_regress(self):
        old, new = self.payloads(1.0, 0.5)
        (c,) = bench.compare_payloads(old, new, threshold_pct=25.0)
        assert not c.regressed
        assert c.delta_pct == pytest.approx(-50.0)

    def test_quick_flavour_mismatch_refused(self):
        old, new = self.payloads(1.0, 1.0)
        old["quick"] = False
        with pytest.raises(ValueError, match="quick"):
            bench.compare_payloads(old, new)

    def test_new_benches_skipped(self):
        old, new = self.payloads(1.0, 1.0)
        del old["benches"]["ep_dedicated"]
        assert bench.compare_payloads(old, new) == []


class TestBenchCli:
    def run_cli(self, *argv):
        from repro.cli import main

        return main(["bench", "--rounds", "1", "--quick", *argv])

    def test_writes_baseline(self, tmp_path, capsys):
        assert self.run_cli("--out", str(tmp_path), "--label", "ci") == 0
        payload = bench.load_payload(tmp_path / "BENCH_ci.json")
        assert payload["quick"] is True
        assert set(payload["benches"]) == set(bench.bench_names())

    def test_missing_baseline_is_not_fatal(self, tmp_path, capsys):
        rc = self.run_cli("--out", str(tmp_path),
                          "--baseline", str(tmp_path / "nope.json"))
        assert rc == 0
        assert "skipping comparison" in capsys.readouterr().out

    def test_regression_fails(self, tmp_path, capsys):
        assert self.run_cli("--out", str(tmp_path), "--label", "old") == 0
        baseline = tmp_path / "BENCH_old.json"
        payload = bench.load_payload(baseline)
        for entry in payload["benches"].values():
            entry["wall_s"] /= 100.0  # pretend the past was 100x faster
        baseline.write_text(json.dumps(payload))
        rc = self.run_cli("--out", str(tmp_path), "--label", "new",
                          "--baseline", str(baseline))
        assert rc == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_comparison_passes_against_self(self, tmp_path, capsys):
        assert self.run_cli("--out", str(tmp_path), "--label", "old") == 0
        baseline = bench.load_payload(tmp_path / "BENCH_old.json")
        # loosen wall times so scheduler noise cannot flake the test
        for entry in baseline["benches"].values():
            entry["wall_s"] *= 10.0
        (tmp_path / "BENCH_old.json").write_text(json.dumps(baseline))
        rc = self.run_cli("--out", str(tmp_path), "--label", "new",
                          "--baseline", str(tmp_path / "BENCH_old.json"))
        assert rc == 0


class TestBenchComparePair:
    """``repro bench --compare A B``: the head-to-head two-payload form."""

    def write(self, tmp_path, label, wall_s, events=100, engine="heap"):
        results = [
            bench.BenchResult(name="ep_dedicated", wall_s=wall_s,
                              events=events, rounds=3),
        ]
        payload = bench.to_payload(results, label=label, quick=True,
                                   engine=engine)
        return str(bench.write_payload(payload, out_dir=tmp_path))

    def run_cli(self, *argv):
        from repro.cli import main

        return main(["bench", *argv])

    def test_speedup_table_and_exit_zero(self, tmp_path, capsys):
        a = self.write(tmp_path, "heapref", 2.5, engine="heap")
        b = self.write(tmp_path, "batched", 1.0, engine="batched")
        rc = self.run_cli("--compare", a, b)
        out = capsys.readouterr().out
        assert rc == 0
        assert "speedup" in out
        assert "2.5" in out  # 2.5s -> 1.0s is a 2.5x speedup
        assert "heapref" in out and "batched" in out

    def test_regression_beyond_threshold_fails(self, tmp_path, capsys):
        a = self.write(tmp_path, "ref", 1.0)
        b = self.write(tmp_path, "cand", 1.5)
        assert self.run_cli("--compare", a, b) == 1
        assert "REGRESSED" in capsys.readouterr().out
        # a looser threshold lets the same pair pass
        assert self.run_cli("--compare", a, b, "--threshold", "60") == 0

    def test_events_mismatch_is_exit_2(self, tmp_path, capsys):
        a = self.write(tmp_path, "ref", 1.0, events=100)
        b = self.write(tmp_path, "cand", 1.0, events=101)
        assert self.run_cli("--compare", a, b) == 2
        assert "determinism regression" in capsys.readouterr().err
        # --wall-only skips the tripwire (and the walls match)
        assert self.run_cli("--compare", a, b, "--wall-only") == 0

    def test_events_only_stops_before_wall_check(self, tmp_path, capsys):
        a = self.write(tmp_path, "ref", 1.0)
        b = self.write(tmp_path, "cand", 99.0)  # would regress on wall
        assert self.run_cli("--compare", a, b, "--events-only") == 0

    def test_pair_refuses_baseline(self, tmp_path, capsys):
        a = self.write(tmp_path, "ref", 1.0)
        b = self.write(tmp_path, "cand", 1.0)
        assert self.run_cli("--compare", a, b, "--baseline", a) == 2
        assert "--baseline" in capsys.readouterr().err

    def test_three_payloads_rejected(self, tmp_path, capsys):
        a = self.write(tmp_path, "ref", 1.0)
        assert self.run_cli("--compare", a, a, a) == 2

    def test_single_payload_still_requires_baseline(self, tmp_path, capsys):
        a = self.write(tmp_path, "ref", 1.0)
        assert self.run_cli("--compare", a) == 2
        assert "--baseline" in capsys.readouterr().err

    def test_events_and_wall_only_mutually_exclusive(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["bench", "--events-only", "--wall-only"])
        assert "not allowed with" in capsys.readouterr().err


class TestBenchEngineFlag:
    def test_payload_records_engine(self, tmp_path):
        from repro.cli import main

        rc = main(["bench", "--rounds", "1", "--quick", "--engine", "batched",
                   "--out", str(tmp_path), "--label", "b"])
        assert rc == 0
        payload = bench.load_payload(tmp_path / "BENCH_b.json")
        assert payload["engine"] == "batched"

    def test_unknown_engine_rejected(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--engine", "btree"])
