"""Unit tests for migration pricing."""

import pytest

from repro.mem.cache_model import CacheModel
from repro.topology import presets

MB = 1 << 20
GB = 1 << 30


class TestMigrationCost:
    def setup_method(self):
        self.model = CacheModel()
        self.tigerton = presets.tigerton()
        self.nehalem = presets.nehalem()

    def test_initial_placement_free(self):
        assert self.model.migration_cost_us(self.tigerton, 1 * GB, None, 0) == 0.0

    def test_same_core_free(self):
        assert self.model.migration_cost_us(self.tigerton, 1 * GB, 3, 3) == 0.0

    def test_smt_move_nearly_free(self):
        cost = self.model.migration_cost_us(self.nehalem, 1 * GB, 0, 1)
        assert cost == self.model.smt_cost_us

    def test_shared_cache_move_cheap(self):
        # tigerton cores 0,1 share the 4MB L2
        cost = self.model.migration_cost_us(self.tigerton, 1 * GB, 0, 1)
        assert cost == self.model.shared_cache_cost_us

    def test_cross_socket_costs_refill(self):
        cost = self.model.migration_cost_us(self.tigerton, 1 * GB, 0, 4)
        # footprint >> 4MB L2: cost capped at max (the "2 ms" bound)
        assert cost == self.model.max_cost_us

    def test_small_footprint_hits_floor(self):
        # EP-like: "thread migrations are cheap with a magnitude of
        # several microseconds"
        cost = self.model.migration_cost_us(self.tigerton, 1024, 0, 4)
        assert cost == self.model.min_cost_us

    def test_midsize_footprint_scales_linearly(self):
        model = CacheModel(fill_bandwidth_bytes_per_us=1000.0)
        cost = model.migration_cost_us(self.tigerton, 1 * MB, 0, 4)
        assert cost == pytest.approx((1 * MB) / 1000.0)

    def test_cost_clamped_by_destination_llc(self):
        # only what fits in the destination cache refills
        model = CacheModel(fill_bandwidth_bytes_per_us=4096.0, max_cost_us=10**9)
        cost = model.migration_cost_us(self.tigerton, 100 * GB, 0, 4)
        assert cost == pytest.approx((4 * MB) / 4096.0)

    def test_barcelona_within_socket_cheap(self):
        barcelona = presets.barcelona()
        cost = barcelona_cost = self.model.migration_cost_us(barcelona, 1 * GB, 0, 1)
        assert cost == self.model.shared_cache_cost_us  # shared L3

    def test_cost_ordering_smt_cache_socket(self):
        smt = self.model.migration_cost_us(self.nehalem, 64 * MB, 0, 1)
        cache = self.model.migration_cost_us(self.tigerton, 64 * MB, 0, 1)
        cross = self.model.migration_cost_us(self.tigerton, 64 * MB, 0, 4)
        assert smt < cache < cross
