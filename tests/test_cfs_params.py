"""Unit tests for CFS slice computation."""

from repro.sched.cfs import CfsParams


class TestSliceFor:
    def setup_method(self):
        self.p = CfsParams(target_latency=24_000, min_granularity=3_000)

    def test_single_task_gets_whole_period(self):
        assert self.p.slice_for(1) == 24_000

    def test_two_equal_tasks_split_period(self):
        assert self.p.slice_for(2) == 12_000

    def test_many_tasks_bounded_by_min_granularity(self):
        # 100 tasks: period stretches to 300ms, each slice 3ms
        assert self.p.slice_for(100) == 3_000

    def test_period_stretches_when_needed(self):
        # 10 tasks: period max(24ms, 30ms) = 30ms -> 3ms each
        assert self.p.slice_for(10) == 3_000

    def test_weighted_share(self):
        heavy = self.p.slice_for(2, weight=2048, total_weight=3072)
        light = self.p.slice_for(2, weight=1024, total_weight=3072)
        assert heavy == 2 * light

    def test_zero_nr_running_treated_as_one(self):
        assert self.p.slice_for(0) == 24_000

    def test_light_task_floor(self):
        # even a tiny weight gets min_granularity
        s = self.p.slice_for(2, weight=1, total_weight=2048)
        assert s == 3_000
