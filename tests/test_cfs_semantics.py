"""CFS semantic details: yield ordering, sleeper credit, preemption.

These pin down the per-core scheduler behaviours the balancing results
depend on (Section 2/3 of the paper lean on them repeatedly).
"""

import pytest

from repro.balance.pinned import PinnedBalancer
from repro.sched.task import Action, Program, Task
from repro.system import System
from repro.topology import presets

from tests.test_core_sim import OneShot, SleepyProgram, pinned_task


def make_system(n=1, seed=0, **kw):
    system = System(presets.uniform(n), seed=seed, **kw)
    system.set_balancer(PinnedBalancer())
    return system


class TestVruntimeOrdering:
    def test_lower_vruntime_runs_first(self):
        system = make_system()
        a = pinned_task(OneShot(10_000), 0, name="a")
        b = pinned_task(OneShot(10_000), 0, name="b")
        system.spawn_burst([a, b])
        system.run(until=100)
        # give the waiter a big vruntime debt and force a resched
        system.run(until=system.cfs_params.target_latency + 1_000)
        # after one slice the other task must have run
        assert a.exec_us > 0 and b.exec_us > 0

    def test_new_task_starts_at_min_vruntime(self):
        """A late joiner does not get to monopolize the core."""
        system = make_system()
        old = pinned_task(OneShot(200_000), 0, name="old")
        system.spawn_burst([old])
        system.run(until=100_000)
        young = pinned_task(OneShot(50_000), 0, name="young")
        system.spawn_burst([young], at=100_000)
        system.run(until=160_000)
        # within 60ms the two must be sharing roughly evenly, i.e. the
        # newcomer did not inherit a 100ms vruntime credit
        assert young.exec_us < 45_000
        assert old.exec_time_at(system.engine.now, system.cores[0]) > 110_000


class TestSleeperCredit:
    def test_waking_sleeper_gets_bounded_credit(self):
        """A long sleeper preempts quickly but cannot starve the runner."""
        system = make_system()
        sleeper = pinned_task(SleepyProgram(1_000, 100_000), 0, name="sleeper")
        runner = pinned_task(OneShot(400_000), 0, name="runner")
        system.spawn_burst([sleeper, runner])
        system.run()
        # sleeper's second burst (1ms) lands at ~102ms and finishes
        # within a bounded latency (credit = half the latency period,
        # so it preempts within about one slice)
        assert sleeper.finished_at < 160_000
        # runner still completed its work immediately afterwards
        assert runner.finished_at == pytest.approx(
            402_000 + 100, abs=2_000
        )


class TestYieldSemantics:
    def test_yielding_waiter_runs_last_among_runnables(self):
        """After a yield, every other runnable task runs first."""
        from repro.apps.barriers import Barrier, WaitPolicy
        from repro.sched.task import WaitMode

        system = make_system(2)
        barrier = Barrier(system, 2, WaitPolicy(mode=WaitMode.YIELD))

        class Waiter(Program):
            def __init__(self):
                self.steps = [Action.compute(1_000), Action.wait(barrier),
                              Action.exit()]

            def next_action(self, task, now):
                return self.steps.pop(0)

        waiter = Task(program=Waiter(), name="w")
        waiter.pin({0})
        partner = Task(program=Waiter(), name="p")
        partner.pin({1})
        workers = [pinned_task(OneShot(30_000), 0, name=f"wk{i}") for i in range(2)]
        system2 = system  # alias for clarity
        system2.spawn_burst([waiter, partner] + workers)
        # run past the waiter's compute; it then yields to the workers
        system2.run(until=40_000)
        # the waiter consumed only its compute plus yield slivers
        assert waiter.exec_us < 5_000
        live = sum(
            w.exec_time_at(system2.engine.now, system2.cores[0]) for w in workers
        )
        assert live > 25_000


class TestPreemptionGranularity:
    def test_wakeup_preemption_is_damped(self):
        """wakeup_granularity prevents preemption storms: a stream of
        short sleepers cannot completely starve a compute task."""
        system = make_system()

        class Pinger(Program):
            def __init__(self, n):
                self.n = n

            def next_action(self, task, now):
                if self.n <= 0:
                    return Action.exit()
                self.n -= 1
                if self.n % 2 == 0:
                    return Action.compute(200)
                return Action.sleep(1_000)

        pinger = Task(program=Pinger(100), name="ping")
        pinger.pin({0})
        worker = pinned_task(OneShot(100_000), 0, name="worker")
        system.spawn_burst([pinger, worker])
        system.run()
        # worker's completion is delayed only by the pinger's actual
        # compute (~10ms), not by constant context churn
        assert worker.finished_at < 140_000
