"""Tests for the command-line interface."""

import contextlib
import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        rc = main(argv)
    return rc, buf.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_balancer(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--balancer", "wfq"])

    def test_rejects_unknown_bench(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--bench", "lu.Z"])


class TestCommands:
    def test_machines(self):
        rc, out = run_cli(["machines"])
        assert rc == 0
        assert "tigerton" in out and "barcelona" in out and "nehalem" in out

    def test_benches(self):
        rc, out = run_cli(["benches"])
        assert rc == 0
        assert "ft.B" in out and "RSS" in out

    def test_model(self):
        rc, out = run_cli(["model", "--threads", "3", "--cores", "2"])
        assert rc == 0
        assert "Lemma 1 step bound" in out
        assert "2" in out

    def test_run_quick(self):
        rc, out = run_cli([
            "run", "--bench", "ep.C", "--threads", "4", "--cores", "2",
            "--seconds", "0.1", "--repeats", "1",
            "--balancer", "speed", "pinned",
        ])
        assert rc == 0
        assert "SPEED" in out and "PINNED" in out
        assert "ideal speedup 2" in out


class TestStoreCommands:
    SUBMIT = [
        "submit", "--threads", "4", "--cores", "2", "--seconds", "0.05",
        "--repeats", "1", "--balancer", "speed",
    ]

    def _submit(self, store, *extra):
        return run_cli([*self.SUBMIT, "--store", store, *extra])

    def test_submit_then_cached(self, tmp_path):
        store = str(tmp_path / "s")
        rc, out = self._submit(store)
        assert rc == 0
        assert "1 executed" in out and "0 cached" in out
        rc, out = self._submit(store, "--expect-cached")
        assert rc == 0
        assert "1 cached" in out and "0 executed" in out

    def test_expect_cached_fails_on_cold_store(self, tmp_path, capsys):
        rc = main([*self.SUBMIT, "--store", str(tmp_path / "s"),
                   "--expect-cached"])
        assert rc == 1
        assert "expected a fully cached batch" in capsys.readouterr().err

    def test_submit_json(self, tmp_path):
        import json

        rc, out = self._submit(str(tmp_path / "s"), "--json")
        assert rc == 0
        payload = json.loads(out)
        assert len(payload) == 1
        assert payload[0]["result"]["app_name"] == "ep.C"
        assert len(payload[0]["digest"]) == 64

    def test_status_and_fetch(self, tmp_path):
        store = str(tmp_path / "s")
        import json

        _, out = self._submit(store, "--json")
        digest = json.loads(out)[0]["digest"]

        rc, out = run_cli(["status", "--store", store])
        assert rc == 0
        assert digest[:12] in out and "speed" in out

        rc, out = run_cli(["fetch", digest[:8], "--store", store, "--json"])
        assert rc == 0
        assert json.loads(out)["app_name"] == "ep.C"

    def test_fetch_unknown_digest_clean_error(self, tmp_path, capsys):
        self._submit(str(tmp_path / "s"))
        rc = main(["fetch", "0000", "--store", str(tmp_path / "s")])
        assert rc == 2
        assert "no store entry" in capsys.readouterr().err

    def test_store_maintenance(self, tmp_path):
        store = str(tmp_path / "s")
        self._submit(store)
        rc, out = run_cli(["store", "stats", "--store", store])
        assert rc == 0 and "entries" in out
        rc, out = run_cli(["store", "verify", "--store", store])
        assert rc == 0 and "clean" in out
        rc, out = run_cli(["store", "gc", "--store", store, "--max-entries", "0"])
        assert rc == 0 and "evicted 1" in out

    def test_verify_reports_corruption(self, tmp_path):
        import json

        store = str(tmp_path / "s")
        _, out = self._submit(store, "--json")
        digest = json.loads(out)[0]["digest"]
        from repro.store import ResultStore

        path = ResultStore(store)._object_dir(digest) / "entry.json"
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        rc, out = run_cli(["store", "verify", "--store", store])
        assert rc == 1
        assert "corrupt" in out

    def test_sanitize_stored(self, tmp_path):
        store = str(tmp_path / "s")
        self._submit(store, "--trace")
        rc, out = run_cli(["sanitize", "--store", store, "--stored"])
        assert rc == 0
        assert "sanitize: ok" in out and "1 stored trace" in out

    def test_sanitize_stored_without_traces_errors(self, tmp_path, capsys):
        store = str(tmp_path / "s")
        self._submit(store)  # no --trace
        rc = main(["sanitize", "--store", store, "--stored"])
        assert rc == 2
        assert "no traced entries" in capsys.readouterr().err


class TestWatchAndTimeout:
    SUBMIT = TestStoreCommands.SUBMIT

    def test_status_watch_returns_when_digest_present(self, tmp_path):
        import json

        store = str(tmp_path / "s")
        _, out = run_cli([*self.SUBMIT, "--store", store, "--json"])
        digest = json.loads(out)[0]["digest"]
        rc, out = run_cli([
            "status", digest[:10], "--store", store,
            "--watch", "--interval", "0.01", "--timeout", "5",
        ])
        assert rc == 0
        assert digest[:12] in out

    def test_status_watch_times_out_on_missing_digest(self, tmp_path, capsys):
        rc = main([
            "status", "feed" * 16, "--store", str(tmp_path / "s"),
            "--watch", "--interval", "0.01", "--timeout", "0.05",
        ])
        assert rc == 1
        assert "still waiting" in capsys.readouterr().err

    def test_job_timeout_rejects_trace(self, tmp_path, capsys):
        rc = main([
            *self.SUBMIT, "--store", str(tmp_path / "s"),
            "--trace", "--job-timeout", "5",
        ])
        assert rc == 2
        assert "does not combine with trace" in capsys.readouterr().err


class TestClientCommands:
    """The `repro client` verbs against a live background daemon."""

    @pytest.fixture()
    def daemon(self, tmp_path):
        from repro.serve import BackgroundServer, ServeConfig

        bg = BackgroundServer(ServeConfig(
            store_root=str(tmp_path / "serve-store"), port=0,
            workers=1, backend="thread",
        )).start()
        yield bg
        bg.drain()

    def _client(self, daemon, *argv):
        return run_cli(["client", "--url", daemon.base_url, *argv])

    SPEC = [
        "submit", "--threads", "4", "--cores", "2", "--seconds", "0.05",
        "--repeats", "1", "--balancer", "speed",
    ]

    def test_submit_watch_fetch_metrics_and_sse(self, daemon):
        import json

        rc, out = self._client(
            daemon, *self.SPEC, "--watch", "--timeout", "120", "--json",
        )
        assert rc == 0
        (job,) = json.loads(out)
        assert job["state"] == "done"
        digest = job["digest"]

        rc, out = self._client(daemon, "status", digest[:10], "--watch")
        assert rc == 0
        assert json.loads(out)["state"] == "done"

        rc, out = self._client(daemon, "fetch", digest)
        assert rc == 0
        assert json.loads(out)["result"]["app_name"] == "ep.C"

        rc, out = self._client(daemon, "metrics")
        assert rc == 0
        snap = json.loads(out)
        assert snap["completed"] >= 1

        rc, out = self._client(daemon, "watch", digest)
        assert rc == 0
        events = [json.loads(line) for line in out.splitlines()]
        states = [e["state"] for e in events if e["event"] == "status"]
        assert states == ["pending", "running", "done"]
        assert events[-1]["event"] == "end"

    def test_unreachable_daemon_clean_error(self, capsys):
        rc = main([
            "client", "--url", "http://127.0.0.1:9", "metrics",
        ])
        assert rc == 1
        assert "cannot reach" in capsys.readouterr().err


class TestCliErrorHandling:
    def test_oversized_core_subset_clean_error(self, capsys):
        rc = main([
            "run", "--bench", "ep.C", "--threads", "4", "--cores", "20",
            "--seconds", "0.05", "--repeats", "1", "--balancer", "speed",
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "core subset" in err and "tigerton" in err

    def test_zero_threads_clean_error(self, capsys):
        rc = main([
            "run", "--threads", "0", "--cores", "2",
            "--seconds", "0.05", "--repeats", "1",
        ])
        assert rc == 2
        assert "n_threads" in capsys.readouterr().err
