"""Tests for the command-line interface."""

import contextlib
import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        rc = main(argv)
    return rc, buf.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_balancer(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--balancer", "wfq"])

    def test_rejects_unknown_bench(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--bench", "lu.Z"])


class TestCommands:
    def test_machines(self):
        rc, out = run_cli(["machines"])
        assert rc == 0
        assert "tigerton" in out and "barcelona" in out and "nehalem" in out

    def test_benches(self):
        rc, out = run_cli(["benches"])
        assert rc == 0
        assert "ft.B" in out and "RSS" in out

    def test_model(self):
        rc, out = run_cli(["model", "--threads", "3", "--cores", "2"])
        assert rc == 0
        assert "Lemma 1 step bound" in out
        assert "2" in out

    def test_run_quick(self):
        rc, out = run_cli([
            "run", "--bench", "ep.C", "--threads", "4", "--cores", "2",
            "--seconds", "0.1", "--repeats", "1",
            "--balancer", "speed", "pinned",
        ])
        assert rc == 0
        assert "SPEED" in out and "PINNED" in out
        assert "ideal speedup 2" in out


class TestCliErrorHandling:
    def test_oversized_core_subset_clean_error(self, capsys):
        rc = main([
            "run", "--bench", "ep.C", "--threads", "4", "--cores", "20",
            "--seconds", "0.05", "--repeats", "1", "--balancer", "speed",
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "core subset" in err and "tigerton" in err

    def test_zero_threads_clean_error(self, capsys):
        rc = main([
            "run", "--threads", "0", "--cores", "2",
            "--seconds", "0.05", "--repeats", "1",
        ])
        assert rc == 2
        assert "n_threads" in capsys.readouterr().err
