"""Tests for reduction/broadcast collectives."""

import pytest

from repro.apps.barriers import WaitPolicy
from repro.apps.collectives import CollectiveSpmdApp
from repro.balance.pinned import PinnedBalancer
from repro.sched.task import WaitMode
from repro.system import System
from repro.topology import presets


def run_collective(n_threads=4, n_cores=4, iterations=3, work=10_000,
                   root_work=2_000, mode=WaitMode.SLEEP, seed=0, **kwargs):
    system = System(presets.uniform(n_cores), seed=seed)
    system.set_balancer(PinnedBalancer())
    app = CollectiveSpmdApp(
        system, n_threads=n_threads, iterations=iterations, work_us=work,
        root_work_us=root_work, wait_policy=WaitPolicy(mode=mode), **kwargs
    )
    app.spawn()
    system.run_until_done([app])
    return system, app


class TestValidation:
    def test_kind_checked(self):
        system = System(presets.uniform(2), seed=0)
        with pytest.raises(ValueError):
            CollectiveSpmdApp(system, kind="alltoall")

    def test_root_range_checked(self):
        system = System(presets.uniform(2), seed=0)
        with pytest.raises(ValueError):
            CollectiveSpmdApp(system, n_threads=2, root=5)

    def test_double_spawn(self):
        system = System(presets.uniform(2), seed=0)
        system.set_balancer(PinnedBalancer())
        app = CollectiveSpmdApp(system, n_threads=2)
        app.spawn()
        with pytest.raises(RuntimeError):
            app.spawn()


class TestReduction:
    @pytest.mark.parametrize("mode", [WaitMode.SPIN, WaitMode.YIELD, WaitMode.SLEEP])
    def test_completes(self, mode):
        system, app = run_collective(mode=mode)
        assert app.done

    def test_root_serial_phase_gates_everyone(self):
        """elapsed >= iterations * (parallel work + root combine)."""
        system, app = run_collective(
            n_threads=4, iterations=3, work=10_000, root_work=5_000
        )
        assert app.elapsed_us >= 3 * (10_000 + 5_000)
        # and close to it on a dedicated machine
        assert app.elapsed_us == pytest.approx(3 * 15_000, rel=0.1)

    def test_root_does_the_extra_compute(self):
        system, app = run_collective(root_work=5_000, iterations=4)
        root = app.tasks[app.root]
        others = [t for i, t in enumerate(app.tasks) if i != app.root]
        assert root.compute_us == pytest.approx(
            others[0].compute_us + 4 * 5_000, abs=100
        )

    def test_zero_root_work_degenerates_to_barrier(self):
        system, app = run_collective(root_work=0, iterations=3, work=10_000)
        assert app.elapsed_us == pytest.approx(3 * 10_000, rel=0.1)

    def test_nondefault_root(self):
        system, app = run_collective(root_work=3_000, iterations=2, root=2)
        assert app.tasks[2].compute_us > app.tasks[0].compute_us

    def test_imbalanced_contributions(self):
        system, app = run_collective(
            work=[5_000, 5_000, 5_000, 20_000], iterations=2, root_work=1_000
        )
        # gated by the slowest contributor each iteration
        assert app.elapsed_us >= 2 * 21_000

    def test_total_work_accounting(self):
        system, app = run_collective(
            n_threads=3, iterations=2, work=4_000, root_work=1_000
        )
        assert app.total_work_us() == 2 * (3 * 4_000 + 1_000)
        total_compute = sum(t.compute_us for t in app.tasks)
        assert total_compute == pytest.approx(app.total_work_us(), abs=20)


class TestBroadcast:
    def test_broadcast_kind_runs(self):
        system, app = run_collective(kind="broadcast", iterations=2)
        assert app.done

    def test_oversubscribed_with_speed_balancer(self):
        """A reduction app under the speed balancer: completes, and the
        serial root phases do not break the balancing."""
        from repro.balance.linux import LinuxLoadBalancer
        from repro.core.speed_balancer import SpeedBalancer

        system = System(presets.uniform(2), seed=1)
        system.set_balancer(LinuxLoadBalancer())
        app = CollectiveSpmdApp(
            system, n_threads=3, iterations=8, work_us=50_000,
            root_work_us=2_000, wait_policy=WaitPolicy(mode=WaitMode.YIELD),
        )
        sb = SpeedBalancer(app, cores=[0, 1])
        system.add_user_balancer(sb)
        app.spawn(cores=[0, 1])
        system.run_until_done([app])
        assert app.done
        # serialized floor: every iteration is >= 1.5 * work by capacity
        assert app.elapsed_us >= 8 * int(1.5 * 50_000)
