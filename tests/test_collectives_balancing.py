"""Speed balancing interacting with collectives and locks.

Cross-module integration: the paper's claim that the algorithm "does
not make any assumptions ... about synchronization mechanisms" must
hold for the reduction/broadcast and lock workloads too, not just
barriers.
"""

import pytest

from repro.apps.barriers import WaitPolicy
from repro.apps.collectives import CollectiveSpmdApp
from repro.apps.locks import LockedCounterApp
from repro.balance.linux import LinuxLoadBalancer
from repro.core.speed_balancer import SpeedBalancer
from repro.sched.task import WaitMode
from repro.system import System
from repro.topology import presets

YIELD = WaitPolicy(mode=WaitMode.YIELD)


def run_collective(balancer, seed=0):
    system = System(presets.uniform(4), seed=seed)
    system.set_balancer(LinuxLoadBalancer())
    app = CollectiveSpmdApp(
        system, n_threads=6, iterations=6, work_us=150_000,
        root_work_us=5_000, wait_policy=YIELD,
    )
    if balancer == "speed":
        system.add_user_balancer(SpeedBalancer(app))
    app.spawn()
    system.run_until_done([app])
    return app


def run_locked(balancer, seed=0):
    system = System(presets.uniform(2), seed=seed)
    system.set_balancer(LinuxLoadBalancer())
    app = LockedCounterApp(
        system, n_threads=3, iterations=12, private_work_us=100_000,
        critical_work_us=2_000, wait_policy=YIELD,
    )
    if balancer == "speed":
        system.add_user_balancer(SpeedBalancer(app, cores=[0, 1]))
    app.spawn(cores=[0, 1])
    system.run_until_done([app])
    return app


class TestCollectivesUnderSpeedBalancing:
    def test_speed_beats_load_on_oversubscribed_reduction(self):
        """6 threads on 4 cores with per-iteration reductions: rotation
        equalizes progress inside each gather phase."""
        speed = run_collective("speed")
        load = run_collective("load")
        assert speed.elapsed_us < load.elapsed_us
        # capacity bound per iteration: 6*150ms/4 + root 5ms
        bound = 6 * (6 * 150_000 // 4 + 5_000)
        assert speed.elapsed_us < 1.35 * bound

    def test_root_phase_unharmed_by_balancer(self):
        """The root's serial combine completes every iteration."""
        app = run_collective("speed", seed=3)
        root = app.tasks[app.root]
        assert root.compute_us == pytest.approx(
            6 * 150_000 + 6 * 5_000, abs=200
        )


class TestLocksUnderSpeedBalancing:
    def test_lock_workload_oversubscribed(self):
        """3 lock-phased threads on 2 cores: SPEED at least matches LOAD
        (lock-dominated apps have little rotation upside, but the
        balancer must not hurt them)."""
        speed = run_locked("speed")
        load = run_locked("load")
        assert speed.elapsed_us < 1.1 * load.elapsed_us
        assert speed.mutex.acquisitions == 3 * 12

    def test_lock_holder_never_lost(self):
        """Migrating threads around an owned mutex never corrupts it."""
        app = run_locked("speed", seed=7)
        assert app.mutex.holder is None
        assert app.done
