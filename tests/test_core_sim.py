"""Unit tests for CoreSim: dispatch, charging, waits, rates."""

import pytest

from repro.apps.barriers import Barrier, WaitPolicy
from repro.balance.base import NoBalancer
from repro.sched.task import Action, Program, Task, TaskState, WaitMode
from repro.system import System
from repro.topology import presets


class OneShot(Program):
    """Compute a fixed amount of work, then exit."""

    def __init__(self, work_us: int):
        self.work_us = work_us
        self.issued = False

    def next_action(self, task, now):
        if self.issued:
            return Action.exit()
        self.issued = True
        return Action.compute(self.work_us)


class SleepyProgram(Program):
    """compute -> sleep -> compute -> exit."""

    def __init__(self, work_us: int, sleep_us: int):
        self.steps = [
            Action.compute(work_us),
            Action.sleep(sleep_us),
            Action.compute(work_us),
            Action.exit(),
        ]

    def next_action(self, task, now):
        return self.steps.pop(0)


def make_system(machine=None, seed=0) -> System:
    system = System(machine or presets.uniform(2), seed=seed)
    system.set_balancer(NoBalancer())
    return system


def pinned_task(program, core: int, **kwargs) -> Task:
    t = Task(program=program, **kwargs)
    t.pin({core})
    return t


class TestSingleTask:
    def test_task_computes_exact_work(self):
        system = make_system()
        t = pinned_task(OneShot(10_000), 0)
        system.spawn_burst([t])
        system.run()
        assert t.state == TaskState.FINISHED
        assert t.finished_at == 10_000
        assert t.exec_us == 10_000
        assert t.compute_us == 10_000

    def test_clock_factor_scales_time(self):
        system = make_system(presets.asymmetric([2.0, 1.0]))
        t = pinned_task(OneShot(10_000), 0)
        system.spawn_burst([t])
        system.run()
        assert t.finished_at == pytest.approx(5_000, abs=2)

    def test_slow_core(self):
        system = make_system(presets.asymmetric([0.5, 1.0]))
        t = pinned_task(OneShot(10_000), 0)
        system.spawn_burst([t])
        system.run()
        assert t.finished_at == pytest.approx(20_000, abs=2)

    def test_migration_debt_is_unproductive_time(self):
        system = make_system()
        t = pinned_task(OneShot(10_000), 0)
        t.migration_debt_us = 2_000
        system.spawn_burst([t])
        system.run()
        assert t.finished_at == pytest.approx(12_000, abs=2)
        assert t.compute_us == pytest.approx(10_000, abs=2)
        assert t.exec_us == pytest.approx(12_000, abs=2)

    def test_core_stats_busy_time(self):
        system = make_system()
        t = pinned_task(OneShot(10_000), 0)
        system.spawn_burst([t])
        system.run()
        assert system.cores[0].stats.busy_us == 10_000
        assert system.cores[1].stats.busy_us == 0


class TestFairSharing:
    def test_two_tasks_share_fairly(self):
        system = make_system()
        a = pinned_task(OneShot(50_000), 0, name="a")
        b = pinned_task(OneShot(50_000), 0, name="b")
        system.spawn_burst([a, b])
        system.run()
        # both need 50ms of work on a shared core: last finishes at ~100ms
        assert max(a.finished_at, b.finished_at) == pytest.approx(100_000, rel=0.01)
        # the first to finish cannot beat 50ms of pure execution, and
        # fairness keeps it within one slice of the other
        assert min(a.finished_at, b.finished_at) >= 50_000

    def test_vruntime_gap_bounded(self):
        system = make_system()
        a = pinned_task(OneShot(60_000), 0)
        b = pinned_task(OneShot(60_000), 0)
        system.spawn_burst([a, b])
        system.run(until=50_000)
        assert abs(a.vruntime - b.vruntime) <= 2 * system.cfs_params.target_latency

    def test_three_way_sharing(self):
        system = make_system()
        ts = [pinned_task(OneShot(30_000), 0, name=f"t{i}") for i in range(3)]
        system.spawn_burst(ts)
        system.run()
        assert max(t.finished_at for t in ts) == pytest.approx(90_000, rel=0.01)

    def test_nice_weighting_shifts_share(self):
        system = make_system()
        fast = pinned_task(OneShot(50_000), 0, nice=-5, name="hi")
        slow = pinned_task(OneShot(50_000), 0, nice=5, name="lo")
        system.spawn_burst([fast, slow])
        system.run()
        assert fast.finished_at < slow.finished_at

    def test_context_switches_counted(self):
        system = make_system()
        a = pinned_task(OneShot(50_000), 0)
        b = pinned_task(OneShot(50_000), 0)
        system.spawn_burst([a, b])
        system.run()
        assert system.cores[0].stats.context_switches >= 4


class TestSleep:
    def test_sleep_blocks_then_resumes(self):
        system = make_system()
        t = pinned_task(SleepyProgram(10_000, 5_000), 0)
        system.spawn_burst([t])
        system.run()
        assert t.finished_at == pytest.approx(25_000, abs=10)
        assert t.exec_us == pytest.approx(20_000, abs=10)

    def test_sleeper_leaves_core_idle(self):
        system = make_system()
        t = pinned_task(SleepyProgram(10_000, 5_000), 0)
        system.spawn_burst([t])
        system.run(until=12_000)
        assert system.cores[0].is_idle
        assert t.state == TaskState.SLEEPING

    def test_corunner_runs_during_sleep(self):
        system = make_system()
        sleeper = pinned_task(SleepyProgram(10_000, 40_000), 0, name="sleeper")
        worker = pinned_task(OneShot(40_000), 0, name="worker")
        system.spawn_burst([sleeper, worker])
        system.run()
        # worker gets the whole core while the sleeper is blocked, so it
        # finishes well before 2x its work
        assert worker.finished_at < 65_000


class TestWakeupPreemption:
    def test_woken_task_preempts_long_runner(self):
        system = make_system()
        # the sleeper accumulates low vruntime credit while blocked
        sleeper = pinned_task(SleepyProgram(1_000, 30_000), 0, name="sleeper")
        hog = pinned_task(OneShot(200_000), 0, name="hog")
        system.spawn_burst([sleeper, hog])
        system.run()
        # sleeper's second 1ms burst lands mid-hog; with preemption it
        # completes long before the hog's 200ms demand does
        assert sleeper.finished_at < hog.finished_at


class TestBarrierWaitModes:
    def _barrier_pair(self, system, mode, work_a=10_000, work_b=30_000):
        policy = WaitPolicy(mode=mode)
        barrier = Barrier(system, parties=2, policy=policy)

        class P(Program):
            def __init__(self, work):
                self.steps = [Action.compute(work), Action.wait(barrier), Action.exit()]

            def next_action(self, task, now):
                return self.steps.pop(0)

        a = pinned_task(P(work_a), 0, name="a")
        b = pinned_task(P(work_b), 1, name="b")
        return a, b, barrier

    def test_spin_waiter_burns_cpu(self):
        system = make_system()
        a, b, _ = self._barrier_pair(system, WaitMode.SPIN)
        system.spawn_burst([a, b])
        system.run()
        # a spins 20ms waiting for b
        assert a.exec_us == pytest.approx(30_000, rel=0.05)
        assert a.compute_us == pytest.approx(10_000, abs=100)
        assert system.cores[0].stats.spin_us > 15_000

    def test_sleep_waiter_releases_cpu(self):
        system = make_system()
        a, b, _ = self._barrier_pair(system, WaitMode.SLEEP)
        system.spawn_burst([a, b])
        system.run()
        assert a.exec_us == pytest.approx(10_000, rel=0.05)

    def test_yield_waiter_lets_corunner_dominate(self):
        system = make_system()
        a, b, barrier = self._barrier_pair(system, WaitMode.YIELD)
        # put a co-runner on a's core: the yielding waiter should cede
        worker = pinned_task(OneShot(20_000), 0, name="worker")
        system.spawn_burst([a, b, worker])
        system.run()
        # worker needs 20ms; yield-waiter interference is small
        assert worker.finished_at < 40_000

    def test_all_modes_finish_together(self):
        for mode in (WaitMode.SPIN, WaitMode.YIELD, WaitMode.SLEEP):
            system = make_system()
            a, b, _ = self._barrier_pair(system, mode)
            system.spawn_burst([a, b])
            system.run()
            assert a.state == b.state == TaskState.FINISHED
            # both exit shortly after the slower thread's 30ms
            assert abs(a.finished_at - b.finished_at) < 10_000


class TestEffectiveRate:
    def test_numa_remote_slowdown_applies(self):
        system = make_system(presets.barcelona())
        t = pinned_task(OneShot(10_000), 0)
        system.spawn_burst([t])
        system.run(until=1_000)  # first touch on node 0
        assert t.home_node == 0
        rate_home = system.cores[0].effective_rate(t)
        rate_remote = system.cores[4].effective_rate(t)
        assert rate_home == pytest.approx(1.0)
        assert rate_remote == pytest.approx(1.0 / 1.3)

    def test_smt_derate_when_sibling_busy(self):
        system = make_system(presets.nehalem())
        a = pinned_task(OneShot(100_000), 0, name="a")
        b = pinned_task(OneShot(100_000), 1, name="b")  # SMT sibling
        system.spawn_burst([a, b])
        system.run()
        # both finish late because the shared physical core derates
        assert a.finished_at > 120_000
        # but faster than full serialization
        assert a.finished_at < 200_000

    def test_smt_full_speed_when_sibling_idle(self):
        system = make_system(presets.nehalem())
        t = pinned_task(OneShot(10_000), 0)
        system.spawn_burst([t])
        system.run()
        assert t.finished_at == pytest.approx(10_000, abs=10)

    def test_mem_contention_slows_both(self):
        system = make_system(presets.tigerton())
        a = pinned_task(OneShot(50_000), 0, name="a", mem_intensity=0.8)
        b = pinned_task(OneShot(50_000), 1, name="b", mem_intensity=0.8)
        system.spawn_burst([a, b])
        system.run()
        assert a.finished_at > 51_000  # slower than solo

    def test_cpu_bound_immune_to_contention(self):
        system = make_system(presets.tigerton())
        a = pinned_task(OneShot(50_000), 0, name="a", mem_intensity=0.0)
        b = pinned_task(OneShot(50_000), 1, name="b", mem_intensity=0.9)
        system.spawn_burst([a, b])
        system.run()
        assert a.finished_at == pytest.approx(50_000, abs=100)


class TestIdleCallbacks:
    def test_idle_callback_invoked(self):
        system = make_system()
        calls = []
        system.cores[0].idle_callbacks.append(lambda core: calls.append(core.cid))
        t = pinned_task(OneShot(1_000), 0)
        system.spawn_burst([t])
        system.run()
        assert 0 in calls

    def test_idle_pull_from_callback(self):
        """An idle callback may migrate work in; dispatch continues.

        Idle callbacks fire on busy->idle transitions (a core idle from
        t=0 relies on the kernel balancer's periodic tick instead), so
        core 1 gets a short warm-up task.
        """
        system = make_system()
        warmup = pinned_task(OneShot(1_000), 1, name="warmup")
        a = pinned_task(OneShot(50_000), 0, name="a")
        b = pinned_task(OneShot(50_000), 0, name="b")
        b.allowed_cores = frozenset({0, 1})

        def steal(core):
            if b.state == TaskState.RUNNABLE and b.cur_core == 0:
                system.migrate(b, 1, reason="test.steal")

        system.cores[1].idle_callbacks.append(steal)
        system.spawn_burst([warmup, a, b])
        system.run()
        assert b.migrations >= 1
        # with the steal, a and b each get a core: both done by ~55ms
        assert max(a.finished_at, b.finished_at) < 62_000
