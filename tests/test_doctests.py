"""Doctests embedded in module documentation must stay runnable."""

import doctest

import pytest

import repro
import repro.sim.engine
import repro.sim.rng


@pytest.mark.parametrize(
    "module",
    [repro, repro.sim.engine, repro.sim.rng],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} doctest failures"


def test_readme_quickstart_block():
    """The README's quickstart snippet must execute as written."""
    from pathlib import Path

    readme = (Path(__file__).resolve().parent.parent / "README.md").read_text()
    start = readme.index("```python") + len("```python")
    end = readme.index("```", start)
    snippet = readme[start:end]
    namespace: dict = {}
    exec(compile(snippet, "<README quickstart>", "exec"), namespace)
    assert namespace["res"].speedup > 9  # "~11 of the ideal 12"
