"""Unit tests for the DWRR balancer model."""

import pytest

from repro.balance.dwrr import DwrrBalancer
from repro.sched.task import Task, TaskState
from repro.system import System
from repro.topology import presets

from tests.test_core_sim import OneShot, pinned_task


def dwrr_system(machine=None, seed=0, **kwargs):
    system = System(machine or presets.uniform(2), seed=seed, **kwargs)
    system.set_balancer(DwrrBalancer())
    return system


class TestRoundSlices:
    def test_new_task_gets_full_round_slice(self):
        system = dwrr_system()
        t = Task(program=OneShot(10_000))
        system.spawn_burst([t])
        system.run(until=100)
        bal = system.kernel_balancer
        # a full slice plus up to one timer tick of accounting jitter
        assert 0 < t.round_slice_remaining <= bal.round_slice_us + bal.slice_jitter_us
        assert t.round_number == 0

    def test_task_throttled_after_round_slice(self):
        system = dwrr_system(presets.uniform(1))
        a = pinned_task(OneShot(1_000_000), 0, name="a")
        b = pinned_task(OneShot(1_000_000), 0, name="b")
        system.spawn_burst([a, b])
        # sharing the core, each accumulates 100ms of execution (the
        # round slice) by t=200ms; at least one is exhausted just after
        system.run(until=230_000)
        bal = system.kernel_balancer
        exhausted = a.round_slice_remaining <= 0 or b.round_slice_remaining <= 0
        assert exhausted or bal.round[0] >= 1

    def test_round_advances_when_all_exhausted(self):
        system = dwrr_system(presets.uniform(1))
        a = pinned_task(OneShot(1_000_000), 0, name="a")
        b = pinned_task(OneShot(1_000_000), 0, name="b")
        system.spawn_burst([a, b])
        system.run(until=450_000)
        bal = system.kernel_balancer
        assert bal.round[0] >= 2
        assert bal.stats_round_advances >= 2

    def test_fairness_within_rounds(self):
        """Over several rounds, co-located tasks progress equally."""
        system = dwrr_system(presets.uniform(1))
        a = pinned_task(OneShot(600_000), 0, name="a")
        b = pinned_task(OneShot(600_000), 0, name="b")
        system.spawn_burst([a, b])
        system.run(until=800_000)
        assert a.compute_us == pytest.approx(b.compute_us, rel=0.15)


class TestRoundBalancing:
    def test_idle_core_steals_from_same_round(self):
        system = dwrr_system()
        ts = [Task(program=OneShot(2_000_000), name=f"t{i}") for i in range(3)]
        for t in ts:
            t.pin({0})
        system.spawn_burst(ts)
        system.run(until=100)
        for t in ts:
            t.allowed_cores = None
        system.run(until=300_000)
        # DWRR steals even a 1-task imbalance (unlike Linux/ULE):
        # core 1 finishing its (empty) round steals queued work
        assert system.kernel_balancer.stats_steals >= 1
        assert max(system.queue_lengths()) <= 2

    def test_migrations_exceed_linux_style(self):
        """DWRR has no migration history and keeps rebalancing."""
        system = dwrr_system()
        ts = [Task(program=OneShot(3_000_000), name=f"t{i}") for i in range(3)]
        for t in ts:
            t.pin({0})
        system.spawn_burst(ts)
        system.run(until=100)
        for t in ts:
            t.allowed_cores = None
        system.run(until=3_000_000)
        total = sum(t.migrations for t in ts)
        assert total >= 5  # continuous round-balancing churn

    def test_sleeper_rejoins_current_round(self):
        system = dwrr_system()
        t = Task(program=OneShot(1_000))
        t.state = TaskState.SLEEPING
        t.last_core = 0
        t.round_slice_remaining = -5
        t.throttled = True
        system.tasks.append(t)
        system.wake(t)
        assert t.round_slice_remaining > 0
        assert not t.throttled


class TestGlobalFairness:
    def test_three_tasks_two_cores_share_equally(self):
        """The scenario Linux cannot fix: DWRR achieves ~2/3 speed for
        every thread instead of one thread at 1/2 (Section 3)."""
        system = dwrr_system()
        ts = [Task(program=OneShot(1_000_000), name=f"t{i}") for i in range(3)]
        for t in ts:
            t.pin({0})
        system.spawn_burst(ts)
        system.run(until=100)
        for t in ts:
            t.allowed_cores = None
        system.run(until=1_450_000)
        comps = sorted(t.compute_us for t in ts)
        # equal progress within ~20% (round granularity)
        assert comps[0] >= 0.7 * comps[-1]
