"""Dynamic frequency scaling (Turbo Boost / thermal throttling).

Section 3: "the Intel Nehalem processor provides the Turbo Boost
mechanism that over-clocks cores until temperature rises and as a
result cores might run at different clock speeds."  These tests change
clock factors mid-run and verify (a) exact accounting across the
change and (b) that speed balancing adapts while queue-length
balancing cannot even observe it.
"""

import pytest

from repro.apps.barriers import WaitPolicy
from repro.apps.workloads import ep_app
from repro.balance.linux import LinuxLoadBalancer
from repro.balance.pinned import PinnedBalancer
from repro.core.speed_balancer import SpeedBalancer
from repro.sched.task import WaitMode
from repro.system import System
from repro.topology import presets

from tests.test_core_sim import OneShot, pinned_task


class TestMechanics:
    def test_rate_changes_mid_segment(self):
        """10ms of work: 5ms at 1x, then the core halves -> 5+10 = 15ms."""
        system = System(presets.uniform(1), seed=0)
        system.set_balancer(PinnedBalancer())
        t = pinned_task(OneShot(10_000), 0)
        system.spawn_burst([t])
        system.schedule_clock_change(5_000, 0, 0.5)
        system.run()
        assert t.finished_at == pytest.approx(15_000, abs=5)
        # compute_us is productive *wall* time (10ms of work retired
        # over 5ms at 1x plus 10ms at 0.5x)
        assert t.compute_us == pytest.approx(15_000, abs=5)

    def test_overclock_speeds_up(self):
        system = System(presets.uniform(1), seed=0)
        system.set_balancer(PinnedBalancer())
        t = pinned_task(OneShot(10_000), 0)
        system.spawn_burst([t])
        system.schedule_clock_change(5_000, 0, 2.0)
        system.run()
        assert t.finished_at == pytest.approx(7_500, abs=5)

    def test_validation(self):
        system = System(presets.uniform(1), seed=0)
        with pytest.raises(ValueError):
            system.set_clock_factor(0, 0.0)

    def test_idle_core_change_is_silent(self):
        system = System(presets.uniform(2), seed=0)
        system.set_balancer(PinnedBalancer())
        system.set_clock_factor(1, 1.5)
        assert system.machine.cores[1].clock_factor == 1.5


class TestBalancingUnderThrottling:
    def _run(self, balancer: str, n_threads: int, n_cores: int = 8, seed=0,
             per_thread_us=3_000_000):
        """At t=0.3s cores 0 and 1 throttle to 0.6x."""
        system = System(presets.uniform(n_cores), seed=seed)
        system.set_balancer(LinuxLoadBalancer())
        app = ep_app(
            system, n_threads=n_threads,
            wait_policy=WaitPolicy(mode=WaitMode.YIELD),
            total_compute_us=per_thread_us,
        )
        if balancer == "speed":
            system.add_user_balancer(SpeedBalancer(app))
        app.spawn()
        for cid in (0, 1):
            system.schedule_clock_change(300_000, cid, 0.6)
        system.run_until_done([app])
        return system, app

    def test_one_per_core_throttle_speed_does_no_harm(self):
        """With exactly one thread per core, pull-only balancing cannot
        rotate through the throttled cores (moving the victim would
        just double up a fast core); the min-gain guard makes SPEED
        decline, matching LOAD instead of thrashing."""
        sys_speed, app_speed = self._run("speed", n_threads=8)
        sys_load, app_load = self._run("load", n_threads=8)
        assert app_speed.elapsed_us <= 1.02 * app_load.elapsed_us
        pulls = [r for r in sys_speed.migration_log if r.reason == "speed.pull"]
        assert len(pulls) == 0

    def test_oversubscribed_throttle_speed_adapts(self):
        """With 12 threads on 8 cores, rotation spreads the throttled
        cores' pain: SPEED clearly beats LOAD after the clock change."""
        sys_speed, app_speed = self._run("speed", n_threads=12,
                                         per_thread_us=2_000_000)
        sys_load, app_load = self._run("load", n_threads=12,
                                       per_thread_us=2_000_000)
        assert app_speed.elapsed_us < 0.9 * app_load.elapsed_us
        pulls = [r for r in sys_speed.migration_log if r.reason == "speed.pull"]
        assert any(r.src in (0, 1) for r in pulls)

    def test_load_blind_to_clock_change(self):
        """After its startup-clump fixes, LOAD never reacts to the
        throttle: queue lengths still look balanced."""
        system, app = self._run("load", n_threads=8)
        after_throttle = [
            r for r in system.migration_log if r.time > 310_000
        ]
        assert after_throttle == []
        # held to the throttled cores: elapsed ~ work / 0.6
        assert app.elapsed_us == pytest.approx(3_000_000 / 0.6, rel=0.06)
