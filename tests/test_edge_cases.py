"""Edge cases and failure-injection tests across the stack."""

import pytest

from repro.apps.barriers import Barrier, WaitPolicy
from repro.apps.spmd import SpmdApp
from repro.apps.workloads import ep_app
from repro.balance.linux import LinuxLoadBalancer
from repro.balance.pinned import PinnedBalancer
from repro.core.speed_balancer import SpeedBalancer, SpeedBalancerConfig
from repro.sched.task import Action, Program, Task, TaskState, WaitMode
from repro.sim.engine import SimulationError
from repro.system import System
from repro.topology import presets

from tests.test_core_sim import OneShot, pinned_task


class TestZeroAndTinyWork:
    def test_zero_work_compute_completes_immediately(self):
        system = System(presets.uniform(1), seed=0)
        system.set_balancer(PinnedBalancer())
        t = pinned_task(OneShot(0), 0)
        system.spawn_burst([t])
        system.run()
        assert t.state == TaskState.FINISHED
        assert t.finished_at <= 2

    def test_one_microsecond_work(self):
        system = System(presets.uniform(1), seed=0)
        system.set_balancer(PinnedBalancer())
        t = pinned_task(OneShot(1), 0)
        system.spawn_burst([t])
        system.run()
        assert t.finished_at == 1

    def test_single_thread_app_trivial_barrier(self):
        system = System(presets.uniform(1), seed=0)
        system.set_balancer(PinnedBalancer())
        app = SpmdApp(system, "solo", 1, work_us=100, iterations=5,
                      wait_policy=WaitPolicy(mode=WaitMode.SPIN))
        app.spawn()
        system.run_until_done([app])
        assert app.elapsed_us == pytest.approx(500, abs=5)


class TestMigrationDuringWaits:
    def test_migrate_yield_waiter(self):
        """A queued yield-waiter can be migrated; it resumes correctly."""
        system = System(presets.uniform(2), seed=0)
        system.set_balancer(PinnedBalancer())
        barrier = Barrier(system, 2, WaitPolicy(mode=WaitMode.YIELD))

        class P(Program):
            def __init__(self, w):
                self.steps = [Action.compute(w), Action.wait(barrier), Action.exit()]

            def next_action(self, task, now):
                return self.steps.pop(0)

        fast = Task(program=P(1_000), name="fast")
        slow = Task(program=P(80_000), name="slow")
        fast.pin({0})
        slow.pin({0})
        system.spawn_burst([fast, slow])
        system.run(until=30_000)
        # fast is now waiting (yield) co-located with slow; move it away
        fast.allowed_cores = frozenset({0, 1})
        if fast.state == TaskState.RUNNABLE:
            assert system.migrate(fast, 1, reason="test")
        system.run()
        assert fast.state == slow.state == TaskState.FINISHED

    def test_forced_migration_of_spinner(self):
        system = System(presets.uniform(2), seed=0)
        system.set_balancer(PinnedBalancer())
        barrier = Barrier(system, 2, WaitPolicy(mode=WaitMode.SPIN))

        class P(Program):
            def __init__(self, w):
                self.steps = [Action.compute(w), Action.wait(barrier), Action.exit()]

            def next_action(self, task, now):
                return self.steps.pop(0)

        a = Task(program=P(1_000), name="a")
        b = Task(program=P(50_000), name="b")
        a.pin({0})
        b.pin({1})
        system.spawn_burst([a, b])
        system.run(until=10_000)
        assert a.is_waiting  # spinning on core 0
        a.allowed_cores = frozenset({0, 1})
        assert system.migrate(a, 1, forced=True, reason="test")
        system.run()
        assert a.state == TaskState.FINISHED

    def test_blocktime_expiry_exact_boundary(self):
        """Spin deadline landing exactly on a slice boundary."""
        system = System(presets.uniform(2), seed=0)
        system.set_balancer(PinnedBalancer())
        policy = WaitPolicy(mode=WaitMode.SPIN,
                            blocktime_us=system.cfs_params.target_latency)
        barrier = Barrier(system, 2, policy)

        class P(Program):
            def __init__(self, w):
                self.steps = [Action.compute(w), Action.wait(barrier), Action.exit()]

            def next_action(self, task, now):
                return self.steps.pop(0)

        a = Task(program=P(1_000), name="a")
        b = Task(program=P(500_000), name="b")
        a.pin({0})
        b.pin({1})
        system.spawn_burst([a, b])
        system.run(until=200_000)
        assert a.state == TaskState.SLEEPING
        system.run()
        assert a.state == TaskState.FINISHED


class TestBalancerEdges:
    def test_speed_balancer_single_core(self):
        """Degenerate taskset: one core; the balancer has nothing to do."""
        system = System(presets.uniform(1), seed=0)
        system.set_balancer(LinuxLoadBalancer())
        app = ep_app(system, n_threads=3, total_compute_us=50_000)
        sb = SpeedBalancer(app, cores=[0])
        system.add_user_balancer(sb)
        app.spawn(cores=[0])
        system.run_until_done([app])
        assert sb.stats_pulls == 0
        assert app.done

    def test_speed_balancer_more_cores_than_threads(self):
        system = System(presets.uniform(8), seed=0)
        system.set_balancer(LinuxLoadBalancer())
        app = ep_app(system, n_threads=3, total_compute_us=100_000)
        sb = SpeedBalancer(app)
        system.add_user_balancer(sb)
        app.spawn()
        system.run_until_done([app])
        # one thread per core from the initial pinning: no pulls needed
        assert app.elapsed_us == pytest.approx(100_000, rel=0.05)

    def test_zero_noise_and_zero_jitter_still_works(self):
        cfg = SpeedBalancerConfig(noise_sigma=0.0, jitter=False)
        system = System(presets.uniform(2), seed=0)
        system.set_balancer(LinuxLoadBalancer())
        app = ep_app(system, n_threads=3, total_compute_us=1_000_000)
        sb = SpeedBalancer(app, cores=[0, 1], config=cfg)
        system.add_user_balancer(sb)
        app.spawn(cores=[0, 1])
        system.run_until_done([app])
        assert sb.stats_pulls >= 2

    def test_app_finishing_before_first_balance(self):
        """App shorter than the balance interval: no balancer activity."""
        system = System(presets.uniform(4), seed=0)
        system.set_balancer(LinuxLoadBalancer())
        app = ep_app(system, n_threads=4, total_compute_us=10_000)
        sb = SpeedBalancer(app)
        system.add_user_balancer(sb)
        app.spawn()
        system.run_until_done([app])
        assert sb.stats_pulls == 0


class TestEngineGuards:
    def test_livelock_detected_in_system_context(self):
        """A pathological zero-interval self-rescheduling loop trips
        the engine's event limit instead of hanging."""
        system = System(presets.uniform(1), seed=0)
        system.engine.max_events = 10_000

        def loop():
            system.engine.schedule(0, loop)

        system.engine.schedule(0, loop)
        with pytest.raises(SimulationError, match="event limit"):
            system.engine.run()
