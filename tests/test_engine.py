"""Unit tests for the discrete-event engine."""

import heapq

import pytest

from repro.sim.engine import Engine, Event, SimulationError


class TestScheduling:
    def test_single_event_fires_at_time(self):
        eng = Engine()
        fired = []
        eng.schedule(10, lambda: fired.append(eng.now))
        eng.run()
        assert fired == [10]

    def test_events_fire_in_time_order(self):
        eng = Engine()
        order = []
        eng.schedule(30, lambda: order.append("c"))
        eng.schedule(10, lambda: order.append("a"))
        eng.schedule(20, lambda: order.append("b"))
        eng.run()
        assert order == ["a", "b", "c"]

    def test_equal_time_events_fifo(self):
        eng = Engine()
        order = []
        for i in range(10):
            eng.schedule(5, lambda i=i: order.append(i))
        eng.run()
        assert order == list(range(10))

    def test_zero_delay_runs_after_current_queue(self):
        eng = Engine()
        order = []
        eng.schedule(5, lambda: order.append("first"))

        def chains():
            order.append("chain")
            eng.schedule(0, lambda: order.append("chained"))

        eng.schedule(5, chains)
        eng.schedule(5, lambda: order.append("third"))
        eng.run()
        assert order == ["first", "chain", "third", "chained"]

    def test_schedule_at_absolute(self):
        eng = Engine()
        fired = []
        eng.schedule_at(42, lambda: fired.append(eng.now))
        eng.run()
        assert fired == [42]

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.schedule(-1, lambda: None)

    def test_schedule_in_past_rejected(self):
        eng = Engine()
        eng.schedule(10, lambda: eng.schedule_at(5, lambda: None))
        with pytest.raises(SimulationError):
            eng.run()

    def test_clock_starts_at_zero(self):
        assert Engine().now == 0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        eng = Engine()
        fired = []
        ev = eng.schedule(10, lambda: fired.append(1))
        ev.cancel()
        eng.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        eng = Engine()
        ev = eng.schedule(10, lambda: None)
        ev.cancel()
        ev.cancel()
        eng.run()

    def test_cancel_from_another_event(self):
        eng = Engine()
        fired = []
        later = eng.schedule(20, lambda: fired.append("later"))
        eng.schedule(10, later.cancel)
        eng.run()
        assert fired == []

    def test_pending_excludes_cancelled(self):
        eng = Engine()
        ev1 = eng.schedule(10, lambda: None)
        eng.schedule(20, lambda: None)
        ev1.cancel()
        assert eng.pending == 1


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        eng = Engine()
        fired = []
        eng.schedule(10, lambda: fired.append(10))
        eng.schedule(100, lambda: fired.append(100))
        eng.run(until=50)
        assert fired == [10]
        assert eng.now == 50

    def test_run_until_resumes(self):
        eng = Engine()
        fired = []
        eng.schedule(10, lambda: fired.append(10))
        eng.schedule(100, lambda: fired.append(100))
        eng.run(until=50)
        eng.run()
        assert fired == [10, 100]

    def test_event_exactly_at_until_fires(self):
        eng = Engine()
        fired = []
        eng.schedule(50, lambda: fired.append(50))
        eng.run(until=50)
        assert fired == [50]

    def test_stop_ends_run(self):
        eng = Engine()
        fired = []
        eng.schedule(10, lambda: (fired.append(10), eng.stop()))
        eng.schedule(20, lambda: fired.append(20))
        eng.run()
        assert fired == [10]
        # a later run picks the remaining event up
        eng.run()
        assert fired == [10, 20]

    def test_stop_prevents_clock_jump_to_until(self):
        eng = Engine()
        eng.schedule(10, eng.stop)
        eng.run(until=1_000_000)
        assert eng.now == 10

    def test_step_dispatches_one_event(self):
        eng = Engine()
        fired = []
        eng.schedule(10, lambda: fired.append(1))
        eng.schedule(20, lambda: fired.append(2))
        assert eng.step()
        assert fired == [1]
        assert eng.step()
        assert not eng.step()

    def test_run_not_reentrant(self):
        eng = Engine()
        err = []

        def reenter():
            try:
                eng.run()
            except SimulationError as e:
                err.append(e)

        eng.schedule(1, reenter)
        eng.run()
        assert len(err) == 1

    def test_max_events_guards_livelock(self):
        eng = Engine(max_events=100)

        def loop():
            eng.schedule(1, loop)

        eng.schedule(1, loop)
        with pytest.raises(SimulationError, match="event limit"):
            eng.run()

    def test_max_events_guards_step_too(self):
        eng = Engine(max_events=3)
        for i in range(5):
            eng.schedule(i + 1, lambda: None)
        for _ in range(3):
            assert eng.step()
        with pytest.raises(SimulationError, match="event limit"):
            eng.step()

    def test_step_rejects_backwards_time(self):
        # an event forged behind the clock (bypassing schedule's guard)
        # must not silently rewind time in step() any more than in run()
        eng = Engine()
        eng.schedule(100, lambda: None)
        eng.run()
        forged = Event(50, 10**9, lambda: None, "forged")
        heapq.heappush(eng._heap, (forged.time, forged.seq, forged))
        with pytest.raises(SimulationError, match="backwards"):
            eng.step()
        assert eng.now == 100

    def test_observers_see_each_dispatch(self):
        eng = Engine()
        seen = []
        eng.observers.append(lambda ev: seen.append((ev.time, ev.label)))
        eng.schedule(10, lambda: None, label="a")
        eng.schedule(20, lambda: None, label="b")
        eng.run()
        assert seen == [(10, "a"), (20, "b")]

    def test_dispatched_counter(self):
        eng = Engine()
        for i in range(5):
            eng.schedule(i + 1, lambda: None)
        eng.run()
        assert eng.dispatched == 5


class TestCancellationAccounting:
    """pending is O(1) bookkeeping; it must agree with a heap scan."""

    @staticmethod
    def brute_pending(eng):
        return sum(1 for entry in eng._heap if not entry[2].cancelled)

    def test_pending_consistent_under_heavy_cancellation(self):
        eng = Engine()
        events = [eng.schedule(i + 1, lambda: None) for i in range(500)]
        assert eng.pending == self.brute_pending(eng) == 500
        # cancel in an adversarial deterministic pattern: every 2nd,
        # then every 3rd of the rest, repeatedly triggering compaction
        for stride in (2, 3, 1):
            for ev in events[::stride]:
                ev.cancel()
                assert eng.pending == self.brute_pending(eng)
        assert eng.pending == 0

    def test_compaction_shrinks_heap(self):
        eng = Engine()
        events = [eng.schedule(i + 1, lambda: None) for i in range(200)]
        for ev in events[:150]:
            ev.cancel()
        # >half cancelled on a large heap => compacted in place
        assert len(eng._heap) <= 100
        assert eng.pending == 50
        fired = []
        for ev in events[150:]:
            ev.callback = lambda: fired.append(1)
        eng.run()
        assert len(fired) == 50

    def test_small_heaps_not_compacted(self):
        eng = Engine()
        events = [eng.schedule(i + 1, lambda: None) for i in range(10)]
        for ev in events:
            ev.cancel()
        assert len(eng._heap) == 10  # lazy deletion still in effect
        assert eng.pending == 0

    def test_cancel_after_dispatch_does_not_corrupt_pending(self):
        eng = Engine()
        handle = eng.schedule(1, lambda: None)
        eng.schedule(2, lambda: None)
        assert eng.step()
        handle.cancel()  # already fired: must not count against the heap
        assert eng.pending == 1 == self.brute_pending(eng)

    def test_cancel_reschedule_churn_stays_bounded(self):
        # the balancer-timer pattern: cancel + reschedule forever must
        # not grow the heap without bound (lazy deletion alone would)
        eng = Engine()
        timer = eng.schedule(10, lambda: None)
        for i in range(10_000):
            timer.cancel()
            timer = eng.schedule(10 + i, lambda: None)
            assert eng.pending == 1
        assert len(eng._heap) < 200

    def test_forged_event_without_engine_is_safe(self):
        eng = Engine()
        eng.schedule(5, lambda: None)
        forged = Event(7, 10**9, lambda: None, "forged")
        heapq.heappush(eng._heap, (forged.time, forged.seq, forged))
        forged.cancel()  # no engine backref: silently uncounted
        assert eng.pending == 2  # conservative: counted live until popped
        eng.run()
        assert eng.pending == 0

    def test_pending_during_run(self):
        eng = Engine()
        seen = []
        later = eng.schedule(20, lambda: None)

        def first():
            later.cancel()
            seen.append(eng.pending)

        eng.schedule(10, first)
        eng.run()
        assert seen == [0]


class TestIntrospection:
    def test_peek_time(self):
        eng = Engine()
        assert eng.peek_time() is None
        ev = eng.schedule(10, lambda: None)
        eng.schedule(20, lambda: None)
        assert eng.peek_time() == 10
        ev.cancel()
        assert eng.peek_time() == 20

    def test_event_repr_mentions_state(self):
        eng = Engine()
        ev = eng.schedule(10, lambda: None, label="lbl")
        assert "pending" in repr(ev)
        ev.cancel()
        assert "cancelled" in repr(ev)
