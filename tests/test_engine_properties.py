"""Property-based tests for the event engine against a reference model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine

# an operation is (delay, cancel_index_or_None); cancel refers to a
# previously scheduled event by index
ops_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1000),
        st.one_of(st.none(), st.integers(min_value=0, max_value=30)),
    ),
    min_size=1,
    max_size=50,
)


@given(ops=ops_strategy)
@settings(max_examples=200, deadline=None)
def test_fire_order_matches_reference(ops):
    """Events fire in (time, insertion) order, minus cancellations."""
    eng = Engine()
    fired: list[int] = []
    events = []
    expected = []  # (time, seq, idx) of live events
    for idx, (delay, cancel) in enumerate(ops):
        ev = eng.schedule(delay, lambda i=idx: fired.append(i))
        events.append(ev)
        expected.append([delay, idx, idx, True])
        if cancel is not None and cancel < len(events):
            events[cancel].cancel()
            expected[cancel][3] = False
    eng.run()
    # reference: sort by (time, insertion seq), filter cancelled
    ref = [
        idx
        for (t, seq, idx, live) in sorted(
            (e[0], e[1], e[2], e[3]) for e in expected
        )
        if live
    ]
    assert fired == ref


@given(
    delays=st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=30),
    until=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=200, deadline=None)
def test_run_until_is_resumable(delays, until):
    """run(until) + run() fires exactly the same events as one run()."""
    def collect(split):
        eng = Engine()
        fired = []
        for d in delays:
            eng.schedule(d, lambda d=d: fired.append(d))
        if split:
            eng.run(until=until)
            assert all(d <= until for d in fired)
            eng.run()
        else:
            eng.run()
        return fired

    assert collect(split=True) == collect(split=False)


@given(delays=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=20))
@settings(max_examples=100, deadline=None)
def test_clock_is_monotone(delays):
    eng = Engine()
    stamps = []
    for d in delays:
        eng.schedule(d, lambda: stamps.append(eng.now))
    eng.run()
    assert stamps == sorted(stamps)


@given(
    chain_len=st.integers(min_value=1, max_value=20),
    step=st.integers(min_value=0, max_value=10),
)
@settings(max_examples=100, deadline=None)
def test_self_scheduling_chain_terminates(chain_len, step):
    """An event chain scheduling its successor runs to completion."""
    eng = Engine()
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < chain_len:
            eng.schedule(step, tick)

    eng.schedule(0, tick)
    eng.run()
    assert count[0] == chain_len
    assert eng.now == step * (chain_len - 1)
