"""The examples must run end-to-end and print their tables.

Each example is executed in-process (same interpreter, captured
stdout); a smoke-level content check verifies the table headers and the
narrative landed.
"""

import contextlib
import io
import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return buf.getvalue()


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "SPEED" in out and "LOAD" in out and "PINNED" in out
        assert "ideal speedup: 12" in out

    def test_barrier_waiting(self):
        out = run_example("barrier_waiting.py")
        assert "yield (UPC/MPI default)" in out
        assert "KMP_BLOCKTIME" in out

    def test_shared_machine(self):
        out = run_example("shared_machine.py")
        assert "cpu-hog" in out
        assert "make -j 16" in out

    def test_numa_barcelona(self):
        out = run_example("numa_barcelona.py")
        assert "NUMA blocked" in out
        assert "off-node" in out

    def test_asymmetric_turbo(self):
        out = run_example("asymmetric_turbo.py")
        assert "clocks" in out
        assert "SPEED" in out

    def test_analytical_model(self):
        out = run_example("analytical_model.py")
        assert "Lemma 1 bound" in out
        assert "profitability threshold" in out

    def test_trace_gantt(self):
        out = run_example("trace_gantt.py")
        assert "core  0" in out and "core  1" in out
        assert "Jain" in out
