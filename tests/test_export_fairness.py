"""Tests for result export and fairness metrics."""

import csv
import io
import json

import pytest

from repro.apps.workloads import ep_app
from repro.balance.linux import LinuxLoadBalancer
from repro.core.speed_balancer import SpeedBalancer
from repro.harness.experiment import repeat_run, run_app
from repro.metrics.export import result_to_dict, results_to_json, trace_to_csv
from repro.metrics.fairness import jain_index, rotation_fairness
from repro.metrics.trace import TraceRecorder
from repro.system import System
from repro.topology import presets


def quick_run(**kwargs):
    return run_app(
        presets.uniform(4),
        lambda s: ep_app(s, n_threads=4, total_compute_us=50_000),
        balancer="pinned",
        cores=4,
        **kwargs,
    )


class TestExport:
    def test_run_dict_fields(self):
        d = result_to_dict(quick_run())
        assert d["type"] == "run"
        assert d["app_name"] == "ep.C"
        assert d["speedup"] == pytest.approx(d["total_work_us"] / d["elapsed_us"])
        assert len(d["thread_exec_us"]) == 4

    def test_repeated_dict(self):
        rr = repeat_run(
            presets.uniform(4),
            lambda s: ep_app(s, n_threads=4, total_compute_us=50_000),
            balancer="pinned", cores=4, seeds=range(2),
        )
        d = result_to_dict(rr)
        assert d["type"] == "repeated"
        assert len(d["runs"]) == 2
        assert d["variation_pct"] >= 0

    def test_json_round_trip(self):
        doc = results_to_json([quick_run()])
        parsed = json.loads(doc)
        assert parsed[0]["balancer"] == "pinned"

    def test_trace_csv(self):
        tr = TraceRecorder()
        tr.record(1, "a", 0, 0, 10, "run")
        tr.record(2, "b", 1, 5, 25, "wait")
        rows = list(csv.reader(io.StringIO(trace_to_csv(tr))))
        assert rows[0] == ["tid", "task", "core", "start_us", "end_us", "kind"]
        assert rows[1] == ["1", "a", "0", "0", "10", "run"]
        assert len(rows) == 3


class TestJainIndex:
    def test_equal_allocation_is_one(self):
        assert jain_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_hog_is_one_over_n(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_bounds(self):
        vals = [0.1, 0.4, 0.2, 0.9]
        j = jain_index(vals)
        assert 1 / len(vals) <= j <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            jain_index([])
        with pytest.raises(ValueError):
            jain_index([1.0, -0.5])

    def test_zero_total_is_trivially_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0


class TestRotationFairness:
    def _run_traced(self, balancer):
        system = System(presets.uniform(2), seed=0, trace=True)
        system.set_balancer(LinuxLoadBalancer())
        app = ep_app(system, n_threads=3, total_compute_us=1_500_000)
        if balancer == "speed":
            system.add_user_balancer(SpeedBalancer(app, cores=[0, 1]))
        app.spawn(cores=[0, 1])
        system.run_until_done([app])
        return system, app

    def test_speed_rotation_fairer_than_load(self):
        """3-on-2: speed balancing equalizes the threads' CPU shares."""
        sys_speed, app_speed = self._run_traced("speed")
        sys_load, app_load = self._run_traced("load")
        window = (100_000, 1_500_000)  # steady state, before the tail
        j_speed = rotation_fairness(
            sys_speed.trace, [t.tid for t in app_speed.tasks], *window
        )
        j_load = rotation_fairness(
            sys_load.trace, [t.tid for t in app_load.tasks], *window
        )
        assert j_speed > j_load
        assert j_speed > 0.95
