"""Property tests: metrics.export serialization is a lossless inverse."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.export import (
    result_from_dict,
    result_to_dict,
    results_from_json,
    results_to_json,
    trace_from_dict,
    trace_to_dict,
)
from repro.metrics.results import AppRunResult, RepeatedResult


@st.composite
def app_run_results(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    us = st.integers(min_value=0, max_value=10**9)
    exec_us = draw(st.lists(st.integers(min_value=1, max_value=10**9),
                            min_size=n, max_size=n))
    compute_us = [draw(st.integers(min_value=0, max_value=e)) for e in exec_us]
    return AppRunResult(
        app_name=draw(st.sampled_from(["ep.C", "cg.B", "bt.A", "is.C"])),
        balancer=draw(st.sampled_from(["speed", "load", "pinned"])),
        n_cores=draw(st.integers(min_value=1, max_value=16)),
        n_threads=n,
        seed=draw(st.integers(min_value=0, max_value=2**31)),
        elapsed_us=draw(st.integers(min_value=1, max_value=10**9)),
        total_work_us=draw(us),
        migrations=draw(st.integers(min_value=0, max_value=10**6)),
        thread_exec_us=exec_us,
        thread_compute_us=compute_us,
        thread_finish_us=draw(st.lists(us, min_size=n, max_size=n)),
        system_migrations=draw(st.integers(min_value=0, max_value=10**6)),
    )


class TestResultRoundTrip:
    @given(result=app_run_results())
    @settings(max_examples=50, deadline=None)
    def test_run_roundtrip_is_identity(self, result):
        back = result_from_dict(result_to_dict(result))
        assert back == result
        assert back.canonical_json() == result.canonical_json()

    @given(runs=st.lists(app_run_results(), min_size=1, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_repeated_roundtrip_is_identity(self, runs):
        repeated = RepeatedResult(runs=runs)
        back = result_from_dict(result_to_dict(repeated))
        assert isinstance(back, RepeatedResult)
        assert back.runs == runs

    @given(runs=st.lists(app_run_results(), min_size=1, max_size=3))
    @settings(max_examples=25, deadline=None)
    def test_json_roundtrip_mixed(self, runs):
        results = [*runs, RepeatedResult(runs=runs)]
        back = results_from_json(results_to_json(results))
        assert back == results

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="type"):
            result_from_dict({"type": "mystery"})
        with pytest.raises(ValueError):
            results_from_json(json.dumps({"not": "a list"}))


class TestTraceRoundTrip:
    def test_trace_roundtrip_verbatim(self):
        from repro.apps.workloads import AppSpec
        from repro.harness.experiment import run_app
        from repro.topology import presets

        _, system = run_app(
            presets.uniform(4),
            AppSpec(bench="ep.C", n_threads=4, total_compute_us=40_000),
            balancer="speed",
            cores=2,
            trace=True,
            return_system=True,
        )
        trace = system.trace
        back = trace_from_dict(trace_to_dict(trace))
        assert back.segments == trace.segments
        assert back.migrations == trace.migrations
        assert back.limit == trace.limit
        assert back.dropped == trace.dropped
        assert back.migrations_dropped == trace.migrations_dropped

    def test_dropped_counters_preserved(self):
        from repro.metrics.trace import TraceRecorder

        rec = TraceRecorder(limit=2)
        for i in range(5):
            rec.record(tid=i, name=f"t{i}", core=0,
                       start=i * 10, end=i * 10 + 5, kind="exec")
        assert rec.dropped == 3
        back = trace_from_dict(trace_to_dict(rec))
        assert back.dropped == 3
        assert back.truncated
