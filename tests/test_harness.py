"""Unit tests for the experiment harness and reporting."""

import pytest

from repro.apps.workloads import ep_app
from repro.harness import report
from repro.harness.experiment import (
    BALANCER_MODES,
    make_kernel_balancer,
    repeat_run,
    run_app,
)
from repro.topology import presets


def ep_factory(system):
    return ep_app(system, n_threads=8, total_compute_us=200_000)


class TestMakeKernelBalancer:
    def test_all_modes_resolve(self):
        for mode in BALANCER_MODES:
            assert make_kernel_balancer(mode) is not None

    def test_speed_mode_uses_linux_underneath(self):
        from repro.balance.linux import LinuxLoadBalancer

        assert isinstance(make_kernel_balancer("speed"), LinuxLoadBalancer)

    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown balancer"):
            make_kernel_balancer("wfq")


class TestRunApp:
    def test_returns_measurements(self):
        res = run_app(presets.uniform(4), ep_factory, balancer="pinned", cores=4)
        assert res.app_name == "ep.C"
        assert res.n_cores == 4 and res.n_threads == 8
        assert res.elapsed_us > 0
        assert res.total_work_us == 8 * 200_000
        assert len(res.thread_exec_us) == 8

    def test_machine_factory_accepted(self):
        res = run_app(presets.tigerton, ep_factory, balancer="pinned", cores=4)
        assert res.elapsed_us > 0

    def test_cores_as_int(self):
        res = run_app(presets.uniform(8), ep_factory, balancer="pinned", cores=2)
        assert res.n_cores == 2

    def test_cores_none_uses_whole_machine(self):
        res = run_app(presets.uniform(8), ep_factory, balancer="pinned")
        assert res.n_cores == 8

    def test_return_system(self):
        res, system = run_app(
            presets.uniform(4), ep_factory, balancer="load", cores=4,
            return_system=True,
        )
        assert system.engine.now >= res.elapsed_us

    def test_speed_mode_attaches_user_balancer(self):
        res, system = run_app(
            presets.uniform(4), ep_factory, balancer="speed", cores=4,
            return_system=True,
        )
        assert len(system.user_balancers) == 1

    def test_all_modes_run_ep(self):
        for mode in BALANCER_MODES:
            res = run_app(presets.uniform(4), ep_factory, balancer=mode, cores=4)
            assert res.speedup > 0, mode

    def test_deterministic_per_seed(self):
        a = run_app(presets.tigerton, ep_factory, balancer="speed", cores=6, seed=3)
        b = run_app(presets.tigerton, ep_factory, balancer="speed", cores=6, seed=3)
        assert a.elapsed_us == b.elapsed_us
        assert a.migrations == b.migrations

    def test_seeds_change_load_outcomes(self):
        times = {
            run_app(
                presets.tigerton, ep_factory, balancer="load", cores=6, seed=s
            ).elapsed_us
            for s in range(6)
        }
        assert len(times) > 1


class TestRepeatRun:
    def test_aggregates_over_seeds(self):
        rr = repeat_run(
            presets.uniform(4), ep_factory, balancer="pinned", cores=4,
            seeds=range(3),
        )
        assert len(rr.runs) == 3
        assert rr.mean_time_us > 0

    def test_seed_recorded(self):
        rr = repeat_run(
            presets.uniform(4), ep_factory, balancer="pinned", cores=4,
            seeds=[7, 9],
        )
        assert [r.seed for r in rr.runs] == [7, 9]


class TestReport:
    def test_table_alignment(self):
        text = report.table(["a", "bb"], [[1, 2.5], [10, 3.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.50" in text and "3.25" in text

    def test_series(self):
        text = report.series("x", [1, 2], {"y1": [0.1, 0.2], "y2": [1.0, 2.0]})
        assert "y1" in text and "y2" in text
        assert "0.10" in text

    def test_kv_block(self):
        text = report.kv_block("Summary", {"speedup": 1.5, "runs": 10})
        assert "Summary" in text
        assert "speedup" in text and "1.50" in text


class TestCoreSubsetValidation:
    def test_out_of_range_subset_rejected(self):
        with pytest.raises(ValueError, match="core subset"):
            run_app(presets.uniform(4), ep_factory, balancer="pinned", cores=8)

    def test_explicit_bad_core_rejected(self):
        with pytest.raises(ValueError, match="core subset"):
            run_app(
                presets.uniform(4), ep_factory, balancer="pinned",
                cores=[0, 99],
            )

    def test_empty_subset_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            run_app(presets.uniform(4), ep_factory, balancer="pinned", cores=[])

    def test_duplicate_cores_rejected(self):
        with pytest.raises(ValueError, match=r"duplicate core ids \[1\]"):
            run_app(
                presets.uniform(4), ep_factory, balancer="pinned",
                cores=[0, 1, 1, 2],
            )

    def test_duplicates_do_not_inflate_n_cores(self):
        # the old behaviour kept duplicates: n_cores silently became 4
        with pytest.raises(ValueError, match="duplicate"):
            run_app(
                presets.uniform(4), ep_factory, balancer="pinned",
                cores=(2, 2, 3, 3),
            )
