"""Integration tests: the paper's qualitative results must reproduce.

Each test encodes a *shape* claim from the evaluation (Section 6): who
wins, roughly by how much, and under which synchronization behaviour.
Durations are scaled (seconds of simulated time instead of tens), which
preserves every ratio that matters; see EXPERIMENTS.md.
"""

import pytest

from repro.apps.barriers import WaitPolicy
from repro.apps.multiprogram import CpuHog
from repro.apps.workloads import ep_app, make_nas_app
from repro.harness.experiment import repeat_run, run_app
from repro.sched.task import WaitMode
from repro.topology import presets

YIELD = WaitPolicy(mode=WaitMode.YIELD)
SLEEP = WaitPolicy(mode=WaitMode.SLEEP)


def ep_factory(wait=YIELD, n_threads=16, total=4_000_000):
    def factory(system):
        return ep_app(
            system, n_threads=n_threads, wait_policy=wait, total_compute_us=total
        )

    return factory


class TestFigure3Shapes:
    """EP, 16 threads, variable core counts (Tigerton)."""

    def test_speed_beats_load_on_nondivisible_cores(self):
        """The paper's headline: SPEED near-optimal where LOAD is stuck
        at the slowest thread (16 threads on 12 cores: 8.0 vs ~11)."""
        speed = run_app(presets.tigerton, ep_factory(), "speed", cores=12, seed=1)
        load = run_app(presets.tigerton, ep_factory(), "load", cores=12, seed=1)
        assert speed.speedup > 10.0
        assert load.speedup < 9.0
        assert speed.speedup > 1.25 * load.speedup

    def test_pinned_staircase(self):
        """PINNED speedup is 16/ceil(16/N): optimal iff 16 mod N == 0."""
        for cores, expected in [(4, 4.0), (8, 8.0), (12, 8.0), (16, 16.0)]:
            res = run_app(
                presets.tigerton, ep_factory(wait=SLEEP), "pinned",
                cores=cores, seed=0,
            )
            assert res.speedup == pytest.approx(expected, rel=0.05), cores

    def test_speed_with_yield_matches_speed_with_sleep(self):
        """'with speed balancing, identical levels of performance can be
        achieved by calling only sched_yield'."""
        y = run_app(presets.tigerton, ep_factory(wait=YIELD), "speed", cores=12, seed=1)
        s = run_app(presets.tigerton, ep_factory(wait=SLEEP), "speed", cores=12, seed=1)
        assert y.elapsed_us == pytest.approx(s.elapsed_us, rel=0.10)

    def test_load_sleep_beats_load_yield(self):
        """'the Linux load balancer is able to provide better
        scalability' when the runtime sleeps instead of yielding."""
        y = run_app(presets.tigerton, ep_factory(wait=YIELD), "load", cores=12, seed=1)
        s = run_app(presets.tigerton, ep_factory(wait=SLEEP), "load", cores=12, seed=1)
        assert s.speedup > 1.15 * y.speedup

    def test_ule_default_matches_pinned(self):
        """'Performance with the ULE FreeBSD scheduler is very similar
        to the pinned (statically balanced) case.'"""
        ule = run_app(presets.tigerton, ep_factory(), "ule", cores=12, seed=1)
        pin = run_app(presets.tigerton, ep_factory(), "pinned", cores=12, seed=1)
        assert ule.speedup == pytest.approx(pin.speedup, rel=0.15)

    def test_dwrr_between_load_and_speed(self):
        """DWRR fixes the 3-on-2-style imbalance (fairness across
        rounds) but migrates far more than SPEED does; at 12 cores its
        throughput tracks SPEED closely (paper: comparable up to 8
        cores, then below)."""
        dwrr = run_app(presets.tigerton, ep_factory(), "dwrr", cores=12, seed=1)
        load = run_app(presets.tigerton, ep_factory(), "load", cores=12, seed=1)
        speed = run_app(presets.tigerton, ep_factory(), "speed", cores=12, seed=1)
        assert dwrr.speedup > 1.2 * load.speedup
        assert dwrr.speedup < speed.speedup * 1.05
        assert dwrr.migrations > 2 * speed.migrations

    def test_everyone_scales_at_16_on_16(self):
        """'speedup at 16 on 16 was always close to 16' (except DWRR)."""
        for mode in ("speed", "load", "pinned", "ule"):
            res = run_app(
                presets.tigerton, ep_factory(wait=SLEEP), mode, cores=16, seed=0
            )
            assert res.speedup > 14.0, mode

    def test_dwrr_not_above_speed_at_16_on_16(self):
        """Paper measured DWRR at only ~12 of 16 here.  Our model
        reproduces DWRR's scheduling *decisions* (which lose nothing on
        this workload) but not the prototype kernel's implementation
        overheads -- the magnitude deviation is recorded in
        EXPERIMENTS.md.  Directionally DWRR must not beat SPEED."""
        res = run_app(presets.tigerton, ep_factory(wait=SLEEP), "dwrr", cores=16, seed=0)
        speed = run_app(
            presets.tigerton, ep_factory(wait=SLEEP), "speed", cores=16, seed=0
        )
        assert res.speedup <= speed.speedup + 0.05


class TestThreeOnTwo:
    """Section 3's motivating example: 3 threads, 2 cores."""

    def test_load_runs_at_half_speed(self):
        res = run_app(
            presets.tigerton, ep_factory(n_threads=3, total=2_000_000),
            "load", cores=2, seed=0,
        )
        # total work 6s on 2 cores: ideal 3s; LOAD: one thread at 1/2 -> 4s
        assert res.speedup == pytest.approx(1.5, rel=0.05)

    def test_speed_approaches_two_thirds(self):
        res = run_app(
            presets.tigerton, ep_factory(n_threads=3, total=2_000_000),
            "speed", cores=2, seed=0,
        )
        # rotation: every thread ~2/3 speed -> app speedup -> ~1.9
        assert res.speedup > 1.75


class TestVariability:
    """Table 3: LOAD erratic (up to 67%+), SPEED under ~5%."""

    def test_speed_variation_below_load_variation(self):
        factory = ep_factory(total=2_000_000)
        speed = repeat_run(
            presets.tigerton, factory, "speed", cores=10, seeds=range(6)
        )
        load = repeat_run(
            presets.tigerton, factory, "load", cores=10, seeds=range(6)
        )
        assert speed.variation_pct < 10.0
        assert speed.variation_pct <= load.variation_pct
        assert speed.mean_time_us < load.mean_time_us


class TestFigure5CpuHog:
    """EP sharing with a cpu-hog pinned to core 0."""

    def _run(self, mode, wait=SLEEP, n_threads=16, seed=0):
        return run_app(
            presets.tigerton,
            ep_factory(wait=wait, n_threads=n_threads),
            mode,
            cores=16,
            seed=seed,
            corunner_factories=[lambda s: CpuHog(s, core=0)],
        )

    def test_one_per_core_halves(self):
        """'the whole parallel application is slowed by 50%'."""
        res = run_app(
            presets.tigerton,
            ep_factory(wait=SLEEP, n_threads=16),
            "pinned",
            cores=16,
            seed=0,
            corunner_factories=[lambda s: CpuHog(s, core=0)],
        )
        assert res.speedup == pytest.approx(8.0, rel=0.1)

    def test_speed_spreads_the_hog_pain(self):
        """SPEED rotates every thread through the contended core.

        The steady state alternates between "every core one thread,
        core 0 shared with the hog" (15.5 effective cores) and "hog
        alone on core 0, one thread pair elsewhere" (15.0), so the
        achievable band is ~12-14 -- far above One-per-core's 8."""
        runs = [self._run("speed", seed=s) for s in range(3)]
        mean = sum(r.speedup for r in runs) / len(runs)
        assert mean > 11.5

    def test_load_recovers_via_sleepers(self):
        """'performance with LOAD is good because LOAD can balance
        applications that sleep.'"""
        res = self._run("load", wait=SLEEP)
        assert res.speedup > 10.0

    def test_speed_beats_one_per_core_with_hog(self):
        speed = self._run("speed")
        one_per_core = run_app(
            presets.tigerton,
            ep_factory(wait=SLEEP, n_threads=16),
            "pinned",
            cores=16,
            seed=0,
            corunner_factories=[lambda s: CpuHog(s, core=0)],
        )
        assert speed.speedup > 1.4 * one_per_core.speedup


class TestNuma:
    """Section 6.4: Barcelona behaviour."""

    def test_speed_beats_load_on_barcelona(self):
        speed = run_app(presets.barcelona, ep_factory(), "speed", cores=12, seed=1)
        load = run_app(presets.barcelona, ep_factory(), "load", cores=12, seed=1)
        assert speed.speedup > load.speedup

    def test_speed_numa_blocking_keeps_memory_local(self):
        res, system = run_app(
            presets.barcelona, ep_factory(), "speed", cores=12, seed=1,
            return_system=True,
        )
        from repro.topology.machine import DomainLevel

        for rec in system.migration_log:
            if rec.reason == "speed.pull":
                assert (
                    system.machine.domain_level_between(rec.src, rec.dst)
                    != DomainLevel.NUMA
                )


class TestAsymmetricCores:
    """Section 3, condition 2: cores at different clock speeds."""

    def test_speed_balances_turbo_boosted_machine(self):
        """Oversubscribed threads on a Turbo-Boost-style machine: speed
        balancing (with the paper's clock weighting extension) rotates
        threads so nobody is stuck sharing a slow core."""
        factors = [1.3, 1.3, 0.85, 0.85, 1.0, 1.0, 1.0, 1.0]

        def factory(system):
            return ep_app(system, n_threads=12, wait_policy=YIELD,
                          total_compute_us=2_000_000)

        speed = run_app(presets.asymmetric(factors), factory, "speed", seed=1)
        pinned = run_app(presets.asymmetric(factors), factory, "pinned", seed=1)
        load = run_app(presets.asymmetric(factors), factory, "load", seed=1)
        assert speed.elapsed_us < 0.8 * pinned.elapsed_us
        assert speed.elapsed_us < 0.8 * load.elapsed_us

    def test_fast_cores_attract_more_work(self):
        machine = presets.asymmetric([2.0, 1.0])

        def factory(system):
            return ep_app(system, n_threads=3, wait_policy=YIELD,
                          total_compute_us=2_000_000)

        res, system = run_app(machine, factory, "speed", seed=0, return_system=True)
        # the 2x core retires more of the total compute
        assert system.cores[0].stats.busy_us >= system.cores[1].stats.busy_us * 0.8
        ideal = 3 * 2_000_000 / 3.0  # total work / total capacity
        assert res.elapsed_us < 1.35 * ideal


class TestNasWorkloads:
    def test_speed_close_to_load_fine_grained(self):
        """sp.A syncs every 2ms -- far below the Section 4 profitability
        threshold ((T+1)*S > 2*B needs S > 100ms here), so the paper
        predicts "the same performance as the Linux default".  SPEED's
        speculative pulls cost it a few percent of migration debt; it
        must stay within ~15% of LOAD."""

        def factory(system):
            return make_nas_app(system, "sp.A", wait_policy=YIELD,
                                total_compute_us=400_000)

        speed = repeat_run(presets.tigerton, factory, "speed", cores=12,
                           seeds=range(3))
        load = repeat_run(presets.tigerton, factory, "load", cores=12,
                          seeds=range(3))
        assert speed.mean_time_us < 1.15 * load.mean_time_us

    def test_memory_bound_scales_worse_than_cpu_bound(self):
        """Table 2: ft.B reaches ~5 of 16 on Tigerton, EP ~16."""

        def ft(system):
            return make_nas_app(system, "ft.B", wait_policy=SLEEP,
                                total_compute_us=400_000)

        def ep(system):
            return ep_app(system, n_threads=16, wait_policy=SLEEP,
                          total_compute_us=400_000)

        ft_res = run_app(presets.tigerton, ft, "pinned", cores=16, seed=0)
        ep_res = run_app(presets.tigerton, ep, "pinned", cores=16, seed=0)
        assert ep_res.speedup > 14
        assert ft_res.speedup < 0.6 * ep_res.speedup
