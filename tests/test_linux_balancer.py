"""Unit tests for the Linux load balancer model ("LOAD")."""

import pytest

from repro.balance.linux import LinuxLoadBalancer, LinuxParams
from repro.sched.task import Task, TaskState
from repro.system import System
from repro.topology import presets

from tests.test_core_sim import OneShot, pinned_task


def linux_system(machine=None, seed=0, params=None):
    system = System(machine or presets.uniform(4), seed=seed)
    system.set_balancer(LinuxLoadBalancer(params))
    return system


def movable(work_us: int, name: str = "t") -> Task:
    return Task(program=OneShot(work_us), name=name)


class TestPlacement:
    def test_new_task_goes_to_least_loaded(self):
        system = linux_system()
        busy = [pinned_task(OneShot(500_000), c) for c in (0, 1, 2)]
        system.spawn_burst(busy)
        system.run(until=1_000)
        t = movable(1_000)
        system.spawn_burst([t], at=2_000)
        system.run(until=2_100)
        assert t.cur_core == 3

    def test_burst_clumps_on_stale_snapshot(self):
        """Simultaneous starters can pick the same idle core (footnote 1)."""
        clumped = 0
        for seed in range(20):
            system = linux_system(presets.uniform(8), seed=seed)
            burst = [movable(200_000, f"b{i}") for i in range(8)]
            system.spawn_burst(burst)
            system.run(until=500)
            loads = system.queue_lengths()
            if max(loads) >= 2:
                clumped += 1
        # with random tie-breaking among 8 equally idle cores, clumping
        # is near-certain across 20 seeds
        assert clumped >= 15

    def test_woken_task_back_on_previous_core(self):
        system = linux_system()
        t = movable(1_000)
        t.state = TaskState.SLEEPING
        t.last_core = 2
        system.tasks.append(t)
        system.wake(t)
        assert t.cur_core == 2


class TestThreeOnTwoRule:
    """Paper, Section 2: 'If the balance cannot be improved (e.g. one
    group has 3 tasks and the other 2 tasks) Linux will not migrate any
    tasks' -- and Section 3's three-threads-on-two-cores example."""

    def test_two_vs_one_not_migrated(self):
        system = linux_system(presets.uniform(2))
        ts = [movable(2_000_000, f"t{i}") for i in range(3)]
        for t in ts:
            t.pin({0, 1})
        # force the initial imbalance: 2 on core 0, 1 on core 1
        ts[0].pin({0})
        ts[1].pin({0})
        ts[2].pin({1})
        system.spawn_burst(ts)
        system.run(until=100)
        for t in ts:
            t.allowed_cores = frozenset({0, 1})  # now movable
        system.run(until=1_500_000)
        # 2 vs 1 is not improvable: LOAD must leave it alone
        assert sorted(system.queue_lengths()) == [1, 2]
        assert system.total_migrations() == 0

    def test_four_vs_zero_migrated(self):
        system = linux_system(presets.uniform(2))
        ts = [movable(3_000_000, f"t{i}") for i in range(4)]
        for t in ts:
            t.pin({0})
        system.spawn_burst(ts)
        system.run(until=100)
        for t in ts:
            t.allowed_cores = frozenset({0, 1})
        system.run(until=400_000)
        assert sorted(system.queue_lengths()) == [2, 2]
        assert system.total_migrations() >= 1


class TestNewIdleBalance:
    def test_idle_core_pulls_from_busiest(self):
        system = linux_system(presets.uniform(2))
        short = pinned_task(OneShot(5_000), 1, name="short")
        long1 = pinned_task(OneShot(500_000), 0, name="l1")
        long2 = movable(500_000, "l2")
        long2.pin({0})
        system.spawn_burst([short, long1, long2])
        system.run(until=100)
        long2.allowed_cores = frozenset({0, 1})
        system.run(until=200_000)
        # when `short` finished, core 1 went idle and stole long2
        assert long2.cur_core == 1
        assert long2.migrations == 1

    def test_idle_pull_takes_cache_hot_task_eventually(self):
        """An idle core beats cache-hot resistance (second chance)."""
        system = linux_system(presets.uniform(2))
        short = pinned_task(OneShot(1_000), 1, name="short")
        hot1 = pinned_task(OneShot(400_000), 0, name="h1")
        hot2 = movable(400_000, "h2")
        hot2.pin({0})
        system.spawn_burst([short, hot1, hot2])
        system.run(until=100)
        hot2.allowed_cores = frozenset({0, 1})
        system.run(until=50_000)
        assert hot2.cur_core == 1

    def test_never_steals_the_only_task(self):
        system = linux_system(presets.uniform(2))
        short = pinned_task(OneShot(1_000), 1, name="short")
        solo = movable(500_000, "solo")
        solo.pin({0})
        system.spawn_burst([short, solo])
        system.run(until=100)
        solo.allowed_cores = frozenset({0, 1})
        system.run(until=100_000)
        assert solo.cur_core == 0
        assert solo.migrations == 0


class TestConstraints:
    def test_pinned_tasks_never_pulled(self):
        system = linux_system(presets.uniform(2))
        ts = [pinned_task(OneShot(1_000_000), 0, name=f"p{i}") for i in range(4)]
        system.spawn_burst(ts)
        system.run(until=500_000)
        assert system.queue_lengths()[0] == 4
        assert system.total_migrations() == 0

    def test_running_task_never_pulled(self):
        system = linux_system(presets.uniform(2))
        a = movable(1_000_000, "a")
        b = movable(1_000_000, "b")
        a.pin({0})
        b.pin({0})
        system.spawn_burst([a, b])
        system.run(until=100)
        running = system.cores[0].current
        a.allowed_cores = b.allowed_cores = frozenset({0, 1})
        system.run(until=12_000)
        # only the queued one can have moved in the first balance round
        if running.migrations:
            pytest.fail("running task was migrated by LOAD")

    def test_stats_counters_progress(self):
        system = linux_system(presets.uniform(2))
        ts = [movable(400_000, f"t{i}") for i in range(4)]
        for t in ts:
            t.pin({0})
        system.spawn_burst(ts)
        system.run(until=100)
        for t in ts:
            t.allowed_cores = frozenset({0, 1})
        system.run(until=400_000)
        lb = system.kernel_balancer
        assert lb.stats_attempts > 0
        assert lb.stats_pulls >= 1


class TestDomainIntervals:
    def test_params_cover_all_levels(self):
        from repro.topology.machine import DomainLevel

        p = LinuxParams()
        for level in DomainLevel:
            assert level in p.busy_interval_us
            assert level in p.idle_interval_us
            assert level in p.imbalance_pct

    def test_busy_balancing_is_slower_than_idle(self):
        p = LinuxParams()
        for level, busy in p.busy_interval_us.items():
            assert busy >= p.idle_interval_us[level]
