"""Tests for the Linux balancer's /proc-style tunables."""

import pytest

from repro.balance.linux import LinuxLoadBalancer, LinuxParams
from repro.sched.task import Task
from repro.system import System
from repro.topology import presets
from repro.topology.machine import DomainLevel

from tests.test_core_sim import OneShot


def imbalanced_system(params=None, n_busy=4, machine=None, seed=0):
    system = System(machine or presets.uniform(2), seed=seed)
    system.set_balancer(LinuxLoadBalancer(params))
    ts = [Task(program=OneShot(2_000_000), name=f"t{i}") for i in range(n_busy)]
    for t in ts:
        t.pin({0})
    system.spawn_burst(ts)
    system.run(until=100)
    for t in ts:
        t.allowed_cores = None
    return system, ts


class TestImbalancePct:
    def test_high_pct_tolerates_imbalance(self):
        """With a 300% gate, 4-vs-0 still triggers but 4-vs-2 does not."""
        pct = {level: 300 for level in DomainLevel}
        params = LinuxParams(imbalance_pct=pct)
        system, ts = imbalanced_system(params)
        system.run(until=500_000)
        # idle pull fixes 4v0 regardless; periodic balance then sees
        # 3v1 and 2v2 -- 3v1 passes even the 300% gate (300 > 100*3)
        # but 2v2 stays; net: reaches balance via idle + one pull
        assert max(system.queue_lengths()) <= 3

    def test_default_pct_reaches_even_split(self):
        system, ts = imbalanced_system()
        system.run(until=500_000)
        assert sorted(system.queue_lengths()) == [2, 2]


class TestCacheHotWindow:
    def test_zero_window_disables_hot_resistance(self):
        params = LinuxParams(cache_hot_us=0)
        system, ts = imbalanced_system(params)
        system.run(until=300_000)
        assert sorted(system.queue_lengths()) == [2, 2]

    def test_huge_window_with_low_resist_still_converges(self):
        """Everything is 'hot', but failures escalate past resistance."""
        params = LinuxParams(cache_hot_us=10_000_000, hot_resist_attempts=1)
        system, ts = imbalanced_system(params)
        system.run(until=800_000)
        assert sorted(system.queue_lengths()) == [2, 2]


class TestIntervals:
    def test_slower_ticks_balance_later(self):
        fast = LinuxParams()
        slow = LinuxParams(
            tick_us=50_000,
            busy_interval_us={level: 2_000_000 for level in DomainLevel},
            idle_interval_us={level: 2_000_000 for level in DomainLevel},
        )

        def time_to_balance(params):
            system, ts = imbalanced_system(params, n_busy=3)
            # 3 tasks core 0, core 1 idle -> idle path normally instant;
            # here both intervals are equal so timing is interval-driven
            for stop in range(20_000, 2_100_000, 20_000):
                system.run(until=stop)
                if max(system.queue_lengths()) <= 2:
                    return stop
            return None

        t_fast = time_to_balance(fast)
        t_slow = time_to_balance(slow)
        assert t_fast is not None and t_slow is not None
        assert t_fast < t_slow

    def test_levels_balance_at_own_frequency(self):
        """A cross-socket imbalance on the Tigerton waits for the
        MACHINE-level interval, much longer than the cache level's."""
        system = System(presets.tigerton(), seed=0)
        system.set_balancer(LinuxLoadBalancer())
        # keep every core busy so only the slow busy intervals apply
        fillers = []
        for c in range(16):
            t = Task(program=OneShot(5_000_000), name=f"fill{c}")
            t.pin({c})
            fillers.append(t)
        extra = [Task(program=OneShot(5_000_000), name=f"x{i}") for i in range(4)]
        for t in extra:
            t.pin({0})
        system.spawn_burst(fillers + extra)
        system.run(until=100)
        for t in extra:
            t.allowed_cores = None
        system.run(until=3_000_000)
        # the surplus got spread off core 0 eventually
        assert system.cores[0].nr_running <= 3


class TestStats:
    def test_attempt_counter_grows_with_time(self):
        system, ts = imbalanced_system()
        system.run(until=200_000)
        first = system.kernel_balancer.stats_attempts
        system.run(until=400_000)
        assert system.kernel_balancer.stats_attempts > first
