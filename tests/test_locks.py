"""Tests for the mutex and the lock-contention workload."""

import pytest

from repro.apps.barriers import WaitPolicy
from repro.apps.locks import LockedCounterApp, Mutex
from repro.balance.pinned import PinnedBalancer
from repro.sched.task import Task, WaitMode
from repro.system import System
from repro.topology import presets


def make_system(n=4, seed=0):
    system = System(presets.uniform(n), seed=seed)
    system.set_balancer(PinnedBalancer())
    return system


def run_locked(n_threads=4, n_cores=4, iterations=5, private=5_000,
               critical=500, mode=WaitMode.SLEEP, seed=0):
    system = make_system(n_cores, seed)
    app = LockedCounterApp(
        system, n_threads=n_threads, iterations=iterations,
        private_work_us=private, critical_work_us=critical,
        wait_policy=WaitPolicy(mode=mode),
    )
    app.spawn()
    system.run_until_done([app])
    return system, app


class TestMutexBasics:
    def test_uncontended_acquire(self):
        system = make_system()
        m = Mutex(system)
        t = Task()
        assert m.arrive(t, 0)
        assert m.holder is t

    def test_contended_arrival_waits(self):
        system = make_system()
        m = Mutex(system, WaitPolicy(mode=WaitMode.SPIN))
        a, b = Task(), Task()
        assert m.arrive(a, 0)
        assert not m.arrive(b, 0)
        assert b.waiting_on is m
        assert m.contended_acquisitions == 1

    def test_release_hands_off_fifo(self):
        system = make_system()
        m = Mutex(system, WaitPolicy(mode=WaitMode.SPIN))
        a, b, c = Task(), Task(), Task()
        m.arrive(a, 0)
        m.arrive(b, 0)
        m.arrive(c, 0)
        m.release(a, 10)
        assert m.holder is b
        m.release(b, 20)
        assert m.holder is c
        assert m.total_wait_us == 10 + 20

    def test_release_by_nonholder_rejected(self):
        system = make_system()
        m = Mutex(system)
        a, b = Task(), Task()
        m.arrive(a, 0)
        with pytest.raises(RuntimeError):
            m.release(b, 0)

    def test_release_with_no_waiters_frees(self):
        system = make_system()
        m = Mutex(system)
        a = Task()
        m.arrive(a, 0)
        m.release(a, 5)
        assert m.holder is None


class TestLockedCounterApp:
    @pytest.mark.parametrize("mode", [WaitMode.SPIN, WaitMode.YIELD, WaitMode.SLEEP])
    def test_all_threads_finish(self, mode):
        system, app = run_locked(mode=mode)
        assert app.done
        assert app.mutex.holder is None

    def test_critical_sections_serialize(self):
        """Total critical time is a lower bound on elapsed."""
        system, app = run_locked(
            n_threads=4, iterations=10, private=100, critical=5_000
        )
        total_critical = 4 * 10 * 5_000
        assert app.elapsed_us >= total_critical

    def test_uncontended_runs_at_full_speed(self):
        system, app = run_locked(n_threads=1, iterations=10)
        assert app.elapsed_us == pytest.approx(app.total_work_us(), rel=0.02)

    def test_acquisition_counts(self):
        system, app = run_locked(n_threads=3, iterations=4)
        assert app.mutex.acquisitions == 3 * 4

    def test_sleep_waiters_leave_cores_idle(self):
        """With long critical sections and sleeping waiters, waiting
        threads free their cores."""
        system, app = run_locked(
            n_threads=4, n_cores=4, iterations=3, private=100,
            critical=20_000, mode=WaitMode.SLEEP,
        )
        busy = sum(c.stats.busy_us for c in system.cores)
        # mostly serialized on the lock: occupancy ~ total work, far
        # below 4 cores x elapsed
        assert busy < 2.2 * app.elapsed_us

    def test_spin_waiters_burn_cores(self):
        system, app = run_locked(
            n_threads=4, n_cores=4, iterations=3, private=100,
            critical=20_000, mode=WaitMode.SPIN,
        )
        busy = sum(c.stats.busy_us for c in system.cores)
        assert busy > 3.0 * app.elapsed_us  # everyone burns while waiting

    def test_validation(self):
        system = make_system()
        with pytest.raises(ValueError):
            LockedCounterApp(system, n_threads=0)
        app = LockedCounterApp(system, n_threads=1)
        app.spawn()
        with pytest.raises(RuntimeError):
            app.spawn()
