"""Unit tests for statistics helpers and result containers."""

import pytest

from repro.metrics import stats
from repro.metrics.results import AppRunResult, RepeatedResult


def run(elapsed, seed=0, total_work=1_000_000, migrations=0, **kwargs):
    defaults = dict(
        app_name="app",
        balancer="speed",
        n_cores=4,
        n_threads=8,
        seed=seed,
        elapsed_us=elapsed,
        total_work_us=total_work,
        migrations=migrations,
    )
    defaults.update(kwargs)
    return AppRunResult(**defaults)


class TestStats:
    def test_mean(self):
        assert stats.mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            stats.mean([])

    def test_geomean(self):
        assert stats.geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            stats.geomean([1.0, 0.0])

    def test_variation_pct(self):
        # max/min = 1.5 -> 50%
        assert stats.variation_pct([100.0, 120.0, 150.0]) == pytest.approx(50.0)

    def test_variation_zero_when_stable(self):
        assert stats.variation_pct([5.0, 5.0]) == 0.0

    def test_variation_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            stats.variation_pct([0.0, 1.0])

    def test_ratio_of_means(self):
        assert stats.ratio_of_means([200.0], [100.0]) == 2.0

    def test_ratio_of_worsts(self):
        assert stats.ratio_of_worsts([100.0, 300.0], [100.0, 150.0]) == 2.0

    def test_coefficient_of_variation(self):
        assert stats.coefficient_of_variation([2.0, 2.0]) == 0.0
        assert stats.coefficient_of_variation([1.0, 3.0]) == pytest.approx(0.5)

    def test_cv_zero_mean_raises(self):
        with pytest.raises(ValueError):
            stats.coefficient_of_variation([1.0, -1.0])


class TestAppRunResult:
    def test_speedup(self):
        r = run(elapsed=250_000, total_work=1_000_000)
        assert r.speedup == 4.0

    def test_spin_fraction(self):
        r = run(
            elapsed=100,
            thread_exec_us=[100, 100],
            thread_compute_us=[50, 100],
        )
        assert r.spin_fraction == pytest.approx(0.25)

    def test_spin_fraction_empty(self):
        assert run(elapsed=100).spin_fraction == 0.0

    def test_progress_balance(self):
        r = run(elapsed=100, thread_compute_us=[50, 100])
        assert r.progress_balance == 0.5

    def test_progress_balance_trivial(self):
        assert run(elapsed=100).progress_balance == 1.0
        assert run(elapsed=100, thread_compute_us=[0, 0]).progress_balance == 1.0


class TestRepeatedResult:
    def test_requires_runs(self):
        with pytest.raises(ValueError):
            RepeatedResult(runs=[])

    def test_aggregates(self):
        rr = RepeatedResult(runs=[run(100_000, 0), run(150_000, 1), run(120_000, 2)])
        assert rr.mean_time_us == pytest.approx(123_333.33, rel=1e-4)
        assert rr.worst_time_us == 150_000
        assert rr.best_time_us == 100_000
        assert rr.variation_pct == pytest.approx(50.0)

    def test_mean_speedup(self):
        rr = RepeatedResult(runs=[run(250_000), run(500_000)])
        assert rr.mean_speedup == pytest.approx((4.0 + 2.0) / 2)

    def test_mean_migrations(self):
        rr = RepeatedResult(runs=[run(1, migrations=4), run(1, migrations=6)])
        assert rr.mean_migrations == 5.0

    def test_improvement_avg_pct(self):
        fast = RepeatedResult(runs=[run(100_000)])
        slow = RepeatedResult(runs=[run(150_000)])
        assert fast.improvement_avg_pct(slow) == pytest.approx(50.0)
        assert slow.improvement_avg_pct(fast) == pytest.approx(-33.33, rel=1e-2)

    def test_improvement_worst_pct(self):
        fast = RepeatedResult(runs=[run(90_000), run(100_000)])
        slow = RepeatedResult(runs=[run(90_000), run(170_000)])
        assert fast.improvement_worst_pct(slow) == pytest.approx(70.0)


class TestResultPortability:
    """Results cross process boundaries (parallel harness) and files."""

    def sample(self):
        return run(250_000, seed=3, migrations=2,
                   thread_exec_us=[1, 2], thread_compute_us=[1, 1],
                   thread_finish_us=[9, 10], system_migrations=5)

    def test_pickle_roundtrip_is_equal(self):
        import pickle

        r = self.sample()
        assert pickle.loads(pickle.dumps(r)) == r
        rr = RepeatedResult(runs=[r, run(300_000, seed=4)])
        assert pickle.loads(pickle.dumps(rr)) == rr

    def test_as_dict_is_json_canonical(self):
        import json

        r = self.sample()
        d = r.as_dict()
        assert d["elapsed_us"] == 250_000
        assert d["thread_finish_us"] == [9, 10]
        # canonical form: byte-identical iff the results are equal
        assert json.dumps(d, sort_keys=True) == \
            json.dumps(self.sample().as_dict(), sort_keys=True)
        assert json.dumps(d, sort_keys=True) != \
            json.dumps(run(250_001, seed=3).as_dict(), sort_keys=True)
