"""Tests for the O(1) per-core scheduling mode (Linux 2.6.22 style)."""

import pytest

from repro.apps.workloads import ep_app
from repro.balance.pinned import PinnedBalancer
from repro.harness.experiment import run_app
from repro.sched.cfs import O1Params
from repro.sched.runqueue import O1RunQueue
from repro.sched.task import Task
from repro.system import System
from repro.topology import presets

from tests.test_core_sim import OneShot, pinned_task


class TestO1RunQueue:
    def test_fifo_ignores_vruntime(self):
        q = O1RunQueue()
        a, b = Task(), Task()
        a.vruntime, b.vruntime = 100.0, 1.0
        q.push(a)
        q.push(b)
        assert q.pop_min() is a  # FIFO, not leftmost-vruntime

    def test_swap_on_drain(self):
        q = O1RunQueue()
        a = Task()
        q._rr.push_expired(a)
        assert q.pop_min() is a

    def test_interface_parity(self):
        q = O1RunQueue()
        t = Task()
        q.push(t)
        assert t in q and len(q) == 1
        assert q.peek_min() is t
        q.note_current_vruntime(55.0)  # no-op
        assert q.max_vruntime() == q.min_vruntime
        q.remove(t)
        assert len(q) == 0

    def test_double_push_rejected(self):
        q = O1RunQueue()
        t = Task()
        q.push(t)
        with pytest.raises(ValueError):
            q.push(t)

    def test_requeue_moves_to_tail(self):
        q = O1RunQueue()
        a, b = Task(), Task()
        q.push(a)
        q.push(b)
        q.requeue(a)
        assert q.pop_min() is b


class TestO1Params:
    def test_fixed_timeslice(self):
        p = O1Params()
        assert p.slice_for(1) == 100_000
        assert p.slice_for(7, weight=1, total_weight=9999) == 100_000


class TestO1CoreBehaviour:
    def test_validation(self):
        with pytest.raises(ValueError):
            System(presets.uniform(2), scheduler="bfs")

    def test_sharing_in_100ms_quanta(self):
        """Two tasks alternate in whole 100 ms chunks (vs CFS's ~12 ms)."""
        system = System(presets.uniform(1), seed=0, scheduler="o1", trace=True)
        system.set_balancer(PinnedBalancer())
        a = pinned_task(OneShot(300_000), 0, name="a")
        b = pinned_task(OneShot(300_000), 0, name="b")
        system.spawn_burst([a, b])
        system.run()
        # both finish, full fairness over the run
        assert abs(a.exec_us - b.exec_us) <= 100_000
        # segments are quantum-sized: far fewer context switches than CFS
        long_segments = [s for s in system.trace.segments if s.duration >= 99_000]
        assert len(long_segments) >= 4

    def test_cfs_slices_much_finer(self):
        system = System(presets.uniform(1), seed=0, scheduler="cfs", trace=True)
        system.set_balancer(PinnedBalancer())
        a = pinned_task(OneShot(300_000), 0, name="a")
        b = pinned_task(OneShot(300_000), 0, name="b")
        system.spawn_burst([a, b])
        system.run()
        max_seg = max(s.duration for s in system.trace.segments)
        assert max_seg <= 2 * system.cfs_params.target_latency

    def test_ep_app_correct_under_o1(self):
        res = run_app(
            presets.uniform(4),
            lambda s: ep_app(s, n_threads=8, total_compute_us=200_000),
            balancer="pinned", cores=4, scheduler="o1",
        )
        assert res.speedup == pytest.approx(4.0, rel=0.05)

    def test_dwrr_on_native_o1_substrate(self):
        """DWRR on its 2.6.22-style substrate still fixes 3-on-2."""
        res = run_app(
            presets.uniform(2),
            lambda s: ep_app(s, n_threads=3, total_compute_us=1_500_000),
            balancer="dwrr", cores=2, scheduler="o1",
        )
        # round fairness: well above the stuck-at-half 1.5
        assert res.speedup > 1.7
