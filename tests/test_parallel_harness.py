"""Serial-vs-parallel equivalence of the experiment harness.

The process-pool fan-out (:mod:`repro.harness.parallel`) must be a
pure performance feature: every result it returns has to be
bit-identical to what the default serial path produces, in the same
order.  These tests pin that down with canonical JSON byte comparison
across machines and balancer modes, plus the pickling contract that
makes the fan-out possible.
"""

import json
import pickle

import pytest

from repro.apps.workloads import AppSpec, ep_app
from repro.harness.experiment import repeat_run, run_app
from repro.harness.parallel import (
    MACHINE_PRESETS,
    RunSpec,
    map_specs,
    register_machine,
    resolve_machine,
    run_spec,
    starmap_kwargs,
)
from repro.harness.sweeps import sweep
from repro.topology import presets

#: small-but-real workload: 6 threads on 4 cores, 0.1 simulated seconds
SPEC = AppSpec(bench="ep.C", n_threads=6, wait="yield", total_compute_us=100_000)


def ep_factory(system):
    """Module-level factory: picklable by reference."""
    return ep_app(system, n_threads=6, total_compute_us=100_000)


def canonical(result) -> str:
    """Byte-exact form of an AppRunResult."""
    return json.dumps(result.as_dict(), sort_keys=True)


def grid_runner(cores, balancer):
    return run_app(
        presets.uniform(8), ep_factory, balancer=balancer, cores=cores, seed=0
    ).elapsed_us


class TestAppSpec:
    def test_callable_as_app_factory(self):
        res = run_app(presets.uniform(4), SPEC, balancer="pinned", cores=4)
        assert res.app_name == "ep.C"
        assert res.n_threads == 6

    def test_matches_equivalent_closure(self):
        a = run_app(presets.uniform(4), SPEC, balancer="speed", cores=4, seed=2)
        b = run_app(presets.uniform(4), ep_factory, balancer="speed", cores=4, seed=2)
        assert canonical(a) == canonical(b)

    def test_pickles(self):
        assert pickle.loads(pickle.dumps(SPEC)) == SPEC

    def test_barrier_period_selects_modified_ep(self, uniform4):
        app = AppSpec(total_compute_us=50_000, barrier_period_us=10_000,
                      n_threads=4).build(uniform4)
        assert app.name == "ep.mod"

    def test_unknown_wait_mode_rejected(self, uniform4):
        with pytest.raises(ValueError, match="wait mode"):
            AppSpec(wait="naptime").build(uniform4)


class TestRunSpec:
    def test_make_normalizes(self):
        spec = RunSpec.make("tigerton", SPEC, cores=[2, 0, 1], seed=3,
                            limit_us=5_000_000)
        assert spec.cores == (2, 0, 1)
        assert spec.params == (("limit_us", 5_000_000),)

    def test_resolves_preset_names(self):
        assert resolve_machine("tigerton") is MACHINE_PRESETS["tigerton"]
        with pytest.raises(ValueError, match="unknown machine preset"):
            resolve_machine("cray1")

    def test_register_machine(self):
        register_machine("uniform8", uniform8_machine)
        try:
            res = run_spec(RunSpec.make("uniform8", SPEC, balancer="pinned", cores=4))
            assert res.elapsed_us > 0
        finally:
            del MACHINE_PRESETS["uniform8"]

    def test_run_spec_matches_run_app(self):
        spec = RunSpec.make("barcelona", SPEC, balancer="load", cores=4, seed=5)
        direct = run_app(presets.barcelona, SPEC, balancer="load", cores=4, seed=5)
        assert canonical(run_spec(spec)) == canonical(direct)

    def test_pickles_with_preset_name_and_spec(self):
        spec = RunSpec.make("tigerton", SPEC, cores=(0, 1), seed=1)
        assert pickle.loads(pickle.dumps(spec)) == spec


def uniform8_machine():
    return presets.uniform(8)


class TestMapSpecs:
    def specs(self, n=3):
        return [RunSpec.make("tigerton", SPEC, balancer="speed", cores=4, seed=s)
                for s in range(n)]

    def test_serial_order_and_progress(self):
        seen = []
        results = map_specs(self.specs(), workers=1,
                            progress=lambda s, r: seen.append(s.seed))
        assert [r.seed for r in results] == [0, 1, 2]
        assert seen == [0, 1, 2]

    def test_parallel_identical_to_serial(self):
        serial = map_specs(self.specs(), workers=1)
        parallel = map_specs(self.specs(), workers=2)
        assert [canonical(r) for r in serial] == [canonical(r) for r in parallel]

    def test_parallel_progress_in_input_order(self):
        seen = []
        map_specs(self.specs(), workers=2,
                  progress=lambda s, r: seen.append(s.seed))
        assert seen == [0, 1, 2]

    def test_unpicklable_spec_rejected_clearly(self):
        bad = [RunSpec.make("tigerton", lambda s: ep_factory(s), seed=0),
               RunSpec.make("tigerton", SPEC, seed=1)]
        with pytest.raises(ValueError, match="does not pickle.*workers=1"):
            map_specs(bad, workers=2)

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            map_specs(self.specs(), workers=0)


class TestRepeatRunEquivalence:
    """The satellite: byte-identical results on two machines x three modes."""

    @pytest.mark.parametrize("machine_name", ["tigerton", "barcelona"])
    @pytest.mark.parametrize("balancer", ["speed", "load", "pinned"])
    def test_workers4_bit_identical_to_serial(self, machine_name, balancer):
        machine = MACHINE_PRESETS[machine_name]
        serial = repeat_run(machine, SPEC, balancer=balancer, cores=4,
                            seeds=range(2), workers=1)
        parallel = repeat_run(machine, SPEC, balancer=balancer, cores=4,
                              seeds=range(2), workers=4)
        assert [canonical(r) for r in serial.runs] == \
               [canonical(r) for r in parallel.runs]

    def test_extra_kwargs_cross_the_pool(self):
        serial = repeat_run(presets.tigerton, SPEC, balancer="speed", cores=4,
                            seeds=range(2), workers=1, limit_us=10_000_000)
        parallel = repeat_run(presets.tigerton, SPEC, balancer="speed", cores=4,
                              seeds=range(2), workers=2, limit_us=10_000_000)
        assert [canonical(r) for r in serial.runs] == \
               [canonical(r) for r in parallel.runs]

    def test_module_level_factory_works_in_workers(self):
        serial = repeat_run(presets.tigerton, ep_factory, balancer="load",
                            cores=4, seeds=[3, 4], workers=1)
        parallel = repeat_run(presets.tigerton, ep_factory, balancer="load",
                              cores=4, seeds=[3, 4], workers=2)
        assert [canonical(r) for r in serial.runs] == \
               [canonical(r) for r in parallel.runs]


class TestSweepEquivalence:
    GRID = {"cores": [2, 4], "balancer": ["speed", "pinned"]}

    def test_parallel_sweep_identical_to_serial(self):
        serial = sweep(self.GRID, grid_runner, workers=1)
        parallel = sweep(self.GRID, grid_runner, workers=2)
        assert serial.param_names == parallel.param_names
        assert list(serial.points) == list(parallel.points)  # grid order too
        assert serial.points == parallel.points

    def test_parallel_progress_in_grid_order(self):
        serial_seen, parallel_seen = [], []
        sweep(self.GRID, grid_runner, workers=1,
              progress=lambda a, o: serial_seen.append((a["cores"], a["balancer"], o)))
        sweep(self.GRID, grid_runner, workers=2,
              progress=lambda a, o: parallel_seen.append((a["cores"], a["balancer"], o)))
        assert serial_seen == parallel_seen

    def test_unpicklable_runner_rejected_clearly(self):
        with pytest.raises(ValueError, match="does not pickle"):
            sweep({"x": [1, 2]}, lambda x: x, workers=2)

    def test_starmap_kwargs_serial_path(self):
        assert starmap_kwargs(grid_runner,
                              [{"cores": 2, "balancer": "pinned"}],
                              workers=1)[0] > 0
