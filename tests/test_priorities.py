"""Priority (nice) interactions with the speed metric and balancers.

The paper argues the execution-time speed definition "captures
different task priorities and transient task behavior without
requiring any special cases" -- unlike inverse queue length, which
"requires weighting threads by priorities".  These tests exercise that
claim directly.
"""

import pytest

from repro.apps.barriers import WaitPolicy
from repro.apps.spmd import SpmdApp
from repro.balance.linux import LinuxLoadBalancer
from repro.core.speed import SpeedEstimator
from repro.core.speed_balancer import SpeedBalancer
from repro.sched.task import Task, WaitMode
from repro.system import System
from repro.topology import presets

from tests.test_core_sim import OneShot, pinned_task


class TestSpeedMetricWithPriorities:
    def test_speed_reflects_weighted_share(self):
        """A default-priority thread next to a high-priority co-runner
        gets the CFS-weighted share -- and the speed metric reports it
        with no priority bookkeeping."""
        system = System(presets.uniform(2), seed=0)
        system.set_balancer(LinuxLoadBalancer())
        est = SpeedEstimator(system)
        normal = pinned_task(OneShot(1_000_000), 0, name="norm", nice=0)
        greedy = pinned_task(OneShot(1_000_000), 0, name="hipri", nice=-5)
        system.spawn_burst([normal, greedy])
        system.run(until=50_000)
        est.sample(normal)
        system.run(until=450_000)
        s = est.sample(normal)
        w_norm, w_hi = normal.weight, greedy.weight
        expected = w_norm / (w_norm + w_hi)
        assert s.speed == pytest.approx(expected, abs=0.07)

    def test_queue_length_blind_to_priorities(self):
        """The queue-length 'speed indicator' the paper criticizes:
        both cores have length 2, yet threads progress very
        differently."""
        system = System(presets.uniform(2), seed=0)
        system.set_balancer(LinuxLoadBalancer())
        fair_a = pinned_task(OneShot(400_000), 0, name="a0", nice=0)
        fair_b = pinned_task(OneShot(400_000), 0, name="a1", nice=0)
        victim = pinned_task(OneShot(400_000), 1, name="b0", nice=0)
        bully = pinned_task(OneShot(2_000_000), 1, name="b1", nice=-10)
        system.spawn_burst([fair_a, fair_b, victim, bully])
        system.run(until=300_000)
        assert system.queue_lengths() == [2, 2]  # "balanced" by length
        # but the victim has made far less progress than the fair pair
        assert victim.compute_us < 0.5 * fair_a.compute_us


class TestSpeedBalancingAroundPriorities:
    def test_balancer_rescues_thread_behind_high_priority_corunner(self):
        """An app thread sharing a core with a high-priority unrelated
        task reads as slow; the balancer pulls it to a free core."""
        system = System(presets.uniform(3), seed=0)
        system.set_balancer(LinuxLoadBalancer())
        bully = Task(program=OneShot(5_000_000), name="bully", nice=-10)
        bully.pin({0})
        app = SpmdApp(
            system, "app", 2, work_us=1_500_000, iterations=1,
            wait_policy=WaitPolicy(mode=WaitMode.YIELD),
            barrier_every_iteration=False,
        )
        sb = SpeedBalancer(app, cores=[0, 1])
        system.add_user_balancer(sb)
        system.spawn_burst([bully])
        app.spawn(cores=[0, 1])
        system.run_until_done([app])
        # the thread pinned to core 0 initially crawls at ~10% behind
        # the nice -10 bully; rotation keeps the app moving: both
        # threads finish far sooner than the crawl would allow
        crawl_time = 1_500_000 / (1024 / (1024 + 1024 * 1.25**10))
        assert app.elapsed_us < 0.7 * crawl_time
        assert sb.stats_pulls >= 1
