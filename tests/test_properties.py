"""Property-based tests: conservation laws of the simulator.

Whatever the balancer, topology, wait mode or seed, some invariants
must hold exactly:

* work conservation -- every thread's productive execution equals its
  program's compute demand;
* occupancy accounting -- a core's busy time equals the execution time
  charged to the tasks that ran there, and no core is ever busier than
  wall time;
* lifecycle sanity -- every finished task started, finished after
  starting, and the app's finish equals the max over threads;
* affinity -- a task never executes on a core outside its mask (checked
  via the migration log and final placement).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.barriers import WaitPolicy
from repro.apps.spmd import SpmdApp
from repro.harness.experiment import run_app
from repro.sched.task import TaskState, WaitMode
from repro.topology import presets

MODES = ["speed", "load", "pinned", "dwrr", "ule", "none"]
WAITS = [WaitMode.SPIN, WaitMode.YIELD, WaitMode.SLEEP]


def run_random_config(mode, wait, n_threads, n_cores, iterations, work_us, seed):
    def factory(system):
        return SpmdApp(
            system,
            "papp",
            n_threads,
            work_us=work_us,
            iterations=iterations,
            wait_policy=WaitPolicy(mode=wait),
        )

    return run_app(
        presets.tigerton,
        factory,
        balancer=mode,
        cores=n_cores,
        seed=seed,
        return_system=True,
    )


config = dict(
    mode=st.sampled_from(MODES),
    wait=st.sampled_from(WAITS),
    n_threads=st.integers(min_value=1, max_value=10),
    n_cores=st.integers(min_value=1, max_value=8),
    iterations=st.integers(min_value=1, max_value=3),
    work_us=st.integers(min_value=1_000, max_value=60_000),
    seed=st.integers(min_value=0, max_value=100),
)


@given(**config)
@settings(max_examples=40, deadline=None)
def test_work_conservation(mode, wait, n_threads, n_cores, iterations, work_us, seed):
    """Productive execution == compute demand, for every thread."""
    res, system = run_random_config(
        mode, wait, n_threads, n_cores, iterations, work_us, seed
    )
    for t, compute in zip(system.tasks_of_app("papp"), res.thread_compute_us):
        demand = work_us * iterations
        assert compute == pytest.approx(demand, abs=iterations * 3 + 3)


@given(**config)
@settings(max_examples=40, deadline=None)
def test_occupancy_accounting(mode, wait, n_threads, n_cores, iterations, work_us, seed):
    """Total core busy time == total task exec time; no over-commit."""
    res, system = run_random_config(
        mode, wait, n_threads, n_cores, iterations, work_us, seed
    )
    wall = system.engine.now
    total_busy = sum(c.stats.busy_us for c in system.cores)
    total_exec = sum(t.exec_us for t in system.tasks)
    # in-flight time of still-running tasks is not yet charged; here
    # all tasks finished, so the books must balance exactly
    assert total_busy == total_exec
    for c in system.cores:
        assert 0 <= c.stats.busy_us <= wall


@given(**config)
@settings(max_examples=40, deadline=None)
def test_lifecycle_sanity(mode, wait, n_threads, n_cores, iterations, work_us, seed):
    res, system = run_random_config(
        mode, wait, n_threads, n_cores, iterations, work_us, seed
    )
    app_tasks = system.tasks_of_app("papp")
    assert len(app_tasks) == n_threads
    for t in app_tasks:
        assert t.state == TaskState.FINISHED
        assert t.started_at is not None and t.finished_at is not None
        assert t.finished_at > t.started_at
        assert t.exec_us >= t.compute_us
    assert res.elapsed_us == max(t.finished_at for t in app_tasks) - min(
        t.started_at for t in app_tasks
    )


@given(**config)
@settings(max_examples=40, deadline=None)
def test_affinity_never_violated(mode, wait, n_threads, n_cores, iterations, work_us, seed):
    """No migration ever lands a task outside the core subset."""
    res, system = run_random_config(
        mode, wait, n_threads, n_cores, iterations, work_us, seed
    )
    allowed = set(range(n_cores))
    tids = {t.tid for t in system.tasks_of_app("papp")}
    for rec in system.migration_log:
        if rec.tid in tids:
            assert rec.dst in allowed


@given(**config)
@settings(max_examples=25, deadline=None)
def test_determinism(mode, wait, n_threads, n_cores, iterations, work_us, seed):
    """Same configuration, same seed => bit-identical outcome."""
    a, sys_a = run_random_config(mode, wait, n_threads, n_cores, iterations, work_us, seed)
    b, sys_b = run_random_config(mode, wait, n_threads, n_cores, iterations, work_us, seed)
    assert a.elapsed_us == b.elapsed_us
    assert a.thread_exec_us == b.thread_exec_us
    assert sys_a.total_migrations() == sys_b.total_migrations()


@given(
    wait=st.sampled_from(WAITS),
    works=st.lists(st.integers(min_value=1_000, max_value=50_000), min_size=2, max_size=6),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=30, deadline=None)
def test_barrier_gates_all_threads(wait, works, seed):
    """No thread exits a barrier-terminated app before the slowest
    thread's compute could possibly be done."""
    n = len(works)

    def factory(system):
        return SpmdApp(
            system, "papp", n, work_us=works, iterations=1,
            wait_policy=WaitPolicy(mode=wait),
        )

    res, system = run_app(
        presets.tigerton, factory, balancer="load", cores=n, seed=seed,
        return_system=True,
    )
    slowest_demand = max(works)
    for t in system.tasks_of_app("papp"):
        assert t.finished_at >= slowest_demand


@given(
    n_threads=st.integers(min_value=1, max_value=12),
    n_cores=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=20),
)
@settings(max_examples=30, deadline=None)
def test_speedup_physical_bounds(n_threads, n_cores, seed):
    """Speedup never exceeds min(threads, cores) on a uniform machine."""
    def factory(system):
        return SpmdApp(
            system, "papp", n_threads, work_us=100_000, iterations=1,
            wait_policy=WaitPolicy(mode=WaitMode.SLEEP),
            barrier_every_iteration=False,
        )

    res = run_app(presets.uniform(8), factory, balancer="speed",
                  cores=n_cores, seed=seed)
    assert res.speedup <= min(n_threads, n_cores) + 1e-6
    assert res.speedup > 0
