"""The public API surface: imports, __all__ consistency, versioning."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.topology",
    "repro.sched",
    "repro.balance",
    "repro.core",
    "repro.apps",
    "repro.mem",
    "repro.metrics",
    "repro.harness",
]


class TestImports:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_package_imports(self, name):
        mod = importlib.import_module(name)
        assert mod is not None

    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_entries_resolve(self, name):
        mod = importlib.import_module(name)
        for sym in getattr(mod, "__all__", []):
            assert hasattr(mod, sym), f"{name}.__all__ lists missing {sym}"

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_top_level_convenience(self):
        import repro

        assert callable(repro.run_app)
        assert callable(repro.repeat_run)
        assert repro.SpeedBalancer is not None
        assert repro.System is not None

    def test_docstrings_everywhere(self):
        """Every public module and public symbol carries a docstring."""
        for name in PACKAGES:
            mod = importlib.import_module(name)
            assert mod.__doc__, f"{name} has no module docstring"
            for sym in getattr(mod, "__all__", []):
                obj = getattr(mod, sym)
                if hasattr(obj, "__doc__") and not isinstance(obj, dict):
                    assert obj.__doc__, f"{name}.{sym} has no docstring"
