"""Regression tests for specific bugs fixed during development.

Each test narrates the failure mode it guards against; if one of these
breaks, consult the matching commit before "fixing" the assertion.
"""

import pytest

from repro.apps.barriers import Barrier, WaitPolicy
from repro.apps.workloads import ep_app
from repro.balance.pinned import PinnedBalancer
from repro.sched.task import Action, Program, Task, TaskState, WaitMode
from repro.system import System
from repro.topology import presets
from repro.topology.machine import DomainLevel

from tests.test_core_sim import OneShot, pinned_task


class TestYieldHandoffOnEnqueue:
    """Bug: a lone yield-poller occupied the core in whole 24 ms slices
    and an arriving task (migration or wakeup) had to wait the slice
    out -- real sched_yield loops hand over within microseconds,
    and the delay erased Figure 2's balance-interval benefit."""

    def test_arrival_preempts_lone_yield_poller(self):
        system = System(presets.uniform(2), seed=0)
        system.set_balancer(PinnedBalancer())
        barrier = Barrier(system, 2, WaitPolicy(mode=WaitMode.YIELD))

        class W(Program):
            def __init__(self, w):
                self.steps = [Action.compute(w), Action.wait(barrier), Action.exit()]

            def next_action(self, task, now):
                return self.steps.pop(0)

        poller = Task(program=W(1_000), name="poller")
        poller.pin({0})
        partner = Task(program=W(500_000), name="partner")
        partner.pin({1})
        system.spawn_burst([poller, partner])
        system.run(until=50_000)  # poller is now yield-polling alone
        arrival = pinned_task(OneShot(10_000), 0, name="arrival")
        system.spawn_burst([arrival], at=50_000)
        system.run(until=70_000)
        # the arrival must have started essentially immediately, not a
        # whole scheduler slice later
        assert arrival.exec_time_at(system.engine.now, system.cores[0]) > 9_000


class TestMachineLevelIsNotNuma:
    """Bug: the UMA Tigerton's all-cores domain was classified NUMA,
    so the speed balancer's NUMA blocking forbade every cross-socket
    pull and 16-on-12 stayed at the LOAD shape."""

    def test_cross_socket_pulls_allowed_on_uma(self):
        assert (
            presets.tigerton().domain_level_between(0, 8) == DomainLevel.MACHINE
        )

    def test_speed_wins_cross_socket(self):
        res_speed = None
        from repro.harness.experiment import run_app

        res_speed = run_app(
            presets.tigerton,
            lambda s: ep_app(s, n_threads=16, total_compute_us=1_000_000),
            "speed", cores=12, seed=1,
        )
        assert res_speed.speedup > 9.5


class TestLruSlowCoreCoverage:
    """Bug: choosing the noise-minimum among equally slow cores left
    some 2-thread core unrotated for the whole run (coupon collector),
    gating the app at half speed on Barcelona subsets."""

    def test_every_slow_core_eventually_donates(self):
        from repro.harness.experiment import run_app

        res, system = run_app(
            presets.barcelona,
            lambda s: ep_app(s, n_threads=16, total_compute_us=1_000_000),
            "speed", cores=10, seed=0, return_system=True,
        )
        pull_srcs = {
            r.src for r in system.migration_log if r.reason == "speed.pull"
        }
        # rotation visited several distinct donors, not one noisy favourite
        assert len(pull_srcs) >= 4
        assert res.speedup > 8.2  # above the one-stuck-pair bound of 8.0


class TestChargeClassificationAtRelease:
    """Bug: barrier release cleared wait flags before charging, so the
    whole spin interval was misclassified as productive compute (and
    work_remaining went negative)."""

    def test_spin_time_not_counted_as_compute(self):
        system = System(presets.uniform(2), seed=0)
        system.set_balancer(PinnedBalancer())
        barrier = Barrier(system, 2, WaitPolicy(mode=WaitMode.SPIN))

        class W(Program):
            def __init__(self, w):
                self.steps = [Action.compute(w), Action.wait(barrier), Action.exit()]

            def next_action(self, task, now):
                return self.steps.pop(0)

        fast = Task(program=W(1_000), name="fast")
        fast.pin({0})
        slow = Task(program=W(40_000), name="slow")
        slow.pin({1})
        system.spawn_burst([fast, slow])
        system.run()
        assert fast.compute_us == pytest.approx(1_000, abs=50)
        assert fast.exec_us == pytest.approx(40_000, rel=0.1)


class TestWatchStopScoping:
    """Bug: any task exit stopped the engine when nothing was being
    watched, truncating plain ``system.run()`` simulations."""

    def test_unwatched_run_completes_all_tasks(self):
        system = System(presets.uniform(1), seed=0)
        system.set_balancer(PinnedBalancer())
        short = pinned_task(OneShot(1_000), 0, name="short")
        long_ = pinned_task(OneShot(50_000), 0, name="long")
        system.spawn_burst([short, long_])
        system.run()
        assert long_.state == TaskState.FINISHED


class TestFirstTouchWindow:
    """Bug: NUMA memory was homed at the kernel's (clumped) initial
    placement, so the speed balancer's startup pinning stranded every
    thread's memory remotely."""

    def test_startup_pinning_rehomes_memory(self):
        from repro.harness.experiment import run_app

        res, system = run_app(
            presets.barcelona,
            lambda s: ep_app(s, n_threads=8, total_compute_us=300_000),
            "speed", cores=8, seed=3, return_system=True,
        )
        tasks = system.tasks_of_app("ep.C")
        remote = [
            t for t in tasks
            if t.home_node is not None
            and t.last_core is not None
            and system.machine.numa_node_of(t.last_core) != t.home_node
        ]
        assert remote == []
