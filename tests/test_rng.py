"""Unit tests for the stream-separated rng."""

from repro.sim.rng import SimRng


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = SimRng(7)
        b = SimRng(7)
        assert [a.jitter_us("x", 100) for _ in range(20)] == [
            b.jitter_us("x", 100) for _ in range(20)
        ]

    def test_different_seeds_differ(self):
        a = SimRng(1)
        b = SimRng(2)
        assert [a.jitter_us("x", 10_000) for _ in range(10)] != [
            b.jitter_us("x", 10_000) for _ in range(10)
        ]

    def test_streams_are_cached(self):
        rng = SimRng(0)
        assert rng.stream("s") is rng.stream("s")

    def test_streams_are_independent(self):
        """Draws on one stream must not shift another stream's sequence."""
        a = SimRng(3)
        b = SimRng(3)
        # interleave draws from an unrelated stream on `a` only
        seq_a = []
        for _ in range(10):
            a.jitter_us("noise", 1000)
            seq_a.append(a.jitter_us("target", 1000))
        seq_b = [b.jitter_us("target", 1000) for _ in range(10)]
        assert seq_a == seq_b


class TestDistributions:
    def test_jitter_bounds(self):
        rng = SimRng(0)
        for _ in range(200):
            v = rng.jitter_us("j", 50)
            assert 0 <= v <= 50

    def test_jitter_zero_max(self):
        assert SimRng(0).jitter_us("j", 0) == 0
        assert SimRng(0).jitter_us("j", -5) == 0

    def test_gauss_zero_sigma_returns_mu(self):
        assert SimRng(0).gauss("g", 2.5, 0.0) == 2.5

    def test_gauss_varies(self):
        rng = SimRng(0)
        vals = {round(rng.gauss("g", 0.0, 1.0), 6) for _ in range(10)}
        assert len(vals) > 1

    def test_choice_single(self):
        assert SimRng(0).choice("c", [42]) == 42

    def test_choice_member(self):
        rng = SimRng(0)
        pool = [1, 2, 3]
        for _ in range(20):
            assert rng.choice("c", pool) in pool

    def test_uniform_bounds(self):
        rng = SimRng(0)
        for _ in range(100):
            v = rng.uniform("u", 1.0, 2.0)
            assert 1.0 <= v < 2.0

    def test_shuffled_is_permutation(self):
        rng = SimRng(0)
        orig = list(range(10))
        out = rng.shuffled("s", orig)
        assert sorted(out) == orig
        assert orig == list(range(10))  # input untouched

    def test_randint_bounds(self):
        rng = SimRng(0)
        for _ in range(100):
            assert 3 <= rng.randint("r", 3, 5) <= 5
