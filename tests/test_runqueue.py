"""Unit tests for the CFS and round-robin run queues."""

import pytest

from repro.sched.runqueue import CfsRunQueue, RoundRobinQueue
from repro.sched.task import Task


def task_with_vr(vr: float) -> Task:
    t = Task()
    t.vruntime = vr
    return t


class TestCfsRunQueue:
    def test_empty(self):
        q = CfsRunQueue()
        assert len(q) == 0
        assert q.pop_min() is None
        assert q.peek_min() is None

    def test_pop_min_order(self):
        q = CfsRunQueue()
        ts = [task_with_vr(v) for v in (5.0, 1.0, 3.0)]
        for t in ts:
            q.push(t)
        assert [q.pop_min().vruntime for _ in range(3)] == [1.0, 3.0, 5.0]

    def test_fifo_on_equal_vruntime(self):
        q = CfsRunQueue()
        a, b = task_with_vr(1.0), task_with_vr(1.0)
        q.push(a)
        q.push(b)
        assert q.pop_min() is a
        assert q.pop_min() is b

    def test_double_push_rejected(self):
        q = CfsRunQueue()
        t = task_with_vr(0)
        q.push(t)
        with pytest.raises(ValueError):
            q.push(t)

    def test_contains(self):
        q = CfsRunQueue()
        t = task_with_vr(0)
        assert t not in q
        q.push(t)
        assert t in q

    def test_remove_arbitrary(self):
        q = CfsRunQueue()
        ts = [task_with_vr(v) for v in (1.0, 2.0, 3.0)]
        for t in ts:
            q.push(t)
        q.remove(ts[1])
        assert len(q) == 2
        assert q.pop_min() is ts[0]
        assert q.pop_min() is ts[2]

    def test_remove_missing_raises(self):
        q = CfsRunQueue()
        with pytest.raises(ValueError):
            q.remove(task_with_vr(0))

    def test_peek_does_not_remove(self):
        q = CfsRunQueue()
        t = task_with_vr(1.0)
        q.push(t)
        assert q.peek_min() is t
        assert len(q) == 1

    def test_peek_skips_removed(self):
        q = CfsRunQueue()
        a, b = task_with_vr(1.0), task_with_vr(2.0)
        q.push(a)
        q.push(b)
        q.remove(a)
        assert q.peek_min() is b

    def test_min_vruntime_advances_monotonically(self):
        q = CfsRunQueue()
        for v in (5.0, 1.0, 3.0):
            q.push(task_with_vr(v))
        seen = []
        while q.peek_min() is not None:
            q.pop_min()
            seen.append(q.min_vruntime)
        assert seen == sorted(seen)
        assert q.min_vruntime == 5.0

    def test_min_vruntime_never_decreases_via_current(self):
        q = CfsRunQueue()
        q.note_current_vruntime(10.0)
        assert q.min_vruntime == 10.0
        q.note_current_vruntime(5.0)
        assert q.min_vruntime == 10.0

    def test_note_current_uses_leftmost_floor(self):
        q = CfsRunQueue()
        q.push(task_with_vr(3.0))
        q.note_current_vruntime(10.0)  # leftmost is 3.0, so floor is 3.0
        assert q.min_vruntime == 3.0

    def test_max_vruntime(self):
        q = CfsRunQueue()
        assert q.max_vruntime() == q.min_vruntime
        for v in (1.0, 9.0, 4.0):
            q.push(task_with_vr(v))
        assert q.max_vruntime() == 9.0

    def test_requeue_after_vruntime_change(self):
        q = CfsRunQueue()
        a, b = task_with_vr(1.0), task_with_vr(2.0)
        q.push(a)
        q.push(b)
        a.vruntime = 10.0
        q.requeue(a)
        assert q.pop_min() is b

    def test_total_weight(self):
        q = CfsRunQueue()
        q.push(Task(nice=0))
        q.push(Task(nice=0))
        assert q.total_weight() == 2048

    def test_tasks_snapshot(self):
        q = CfsRunQueue()
        ts = [task_with_vr(v) for v in (1.0, 2.0)]
        for t in ts:
            q.push(t)
        assert set(q.tasks()) == set(ts)


class TestRoundRobinQueue:
    def test_fifo_order(self):
        q = RoundRobinQueue()
        a, b = Task(), Task()
        q.push_active(a)
        q.push_active(b)
        assert q.pop_active() is a
        assert q.pop_active() is b
        assert q.pop_active() is None

    def test_expired_not_popped(self):
        q = RoundRobinQueue()
        t = Task()
        q.push_expired(t)
        assert q.pop_active() is None
        assert len(q) == 1

    def test_swap(self):
        q = RoundRobinQueue()
        t = Task()
        q.push_expired(t)
        q.swap()
        assert q.pop_active() is t

    def test_remove_from_either(self):
        q = RoundRobinQueue()
        a, b = Task(), Task()
        q.push_active(a)
        q.push_expired(b)
        q.remove(a)
        q.remove(b)
        assert len(q) == 0

    def test_contains_and_tasks(self):
        q = RoundRobinQueue()
        a, b = Task(), Task()
        q.push_active(a)
        q.push_expired(b)
        assert a in q and b in q
        assert q.tasks() == [a, b]
