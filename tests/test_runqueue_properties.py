"""Property-based model checking of the run queues."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.runqueue import CfsRunQueue, O1RunQueue
from repro.sched.task import Task

# operation stream: ("push", vruntime) | ("pop",) | ("remove", index)
ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.floats(min_value=0, max_value=1e6,
                                             allow_nan=False)),
        st.tuples(st.just("pop")),
        st.tuples(st.just("remove"), st.integers(min_value=0, max_value=40)),
    ),
    min_size=1,
    max_size=60,
)


@given(ops=ops)
@settings(max_examples=200, deadline=None)
def test_cfs_queue_matches_sorted_model(ops):
    """pop_min always returns the (vruntime, insertion) minimum of the
    live set; removal by identity is exact."""
    q = CfsRunQueue()
    model: list[tuple[float, int, Task]] = []  # (vr, seq, task)
    seq = 0
    created: list[Task] = []
    for op in ops:
        if op[0] == "push":
            t = Task()
            t.vruntime = op[1]
            q.push(t)
            model.append((op[1], seq, t))
            created.append(t)
            seq += 1
        elif op[0] == "pop":
            got = q.pop_min()
            if not model:
                assert got is None
            else:
                model.sort(key=lambda e: (e[0], e[1]))
                expect = model.pop(0)
                assert got is expect[2]
        else:  # remove
            idx = op[1]
            live = [e for e in model]
            if idx < len(live):
                entry = live[idx]
                q.remove(entry[2])
                model.remove(entry)
    # drain: remaining pops come out in order
    model.sort(key=lambda e: (e[0], e[1]))
    drained = []
    while True:
        t = q.pop_min()
        if t is None:
            break
        drained.append(t)
    assert drained == [e[2] for e in model]
    assert len(q) == 0


@given(ops=ops)
@settings(max_examples=200, deadline=None)
def test_o1_queue_matches_fifo_model(ops):
    """The O(1) facade is FIFO with respect to pushes, regardless of
    vruntime, and removal-safe."""
    q = O1RunQueue()
    model: list[Task] = []
    for op in ops:
        if op[0] == "push":
            t = Task()
            t.vruntime = op[1]
            q.push(t)
            model.append(t)
        elif op[0] == "pop":
            got = q.pop_min()
            if not model:
                assert got is None
            else:
                assert got is model.pop(0)
        else:
            idx = op[1]
            if idx < len(model):
                t = model.pop(idx)
                q.remove(t)
        assert len(q) == len(model)
    while model:
        assert q.pop_min() is model.pop(0)


@given(
    vrs=st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                 min_size=1, max_size=40)
)
@settings(max_examples=200, deadline=None)
def test_cfs_min_vruntime_monotone(vrs):
    q = CfsRunQueue()
    for v in vrs:
        t = Task()
        t.vruntime = v
        q.push(t)
    seen = []
    while q.pop_min() is not None:
        seen.append(q.min_vruntime)
    assert seen == sorted(seen)
