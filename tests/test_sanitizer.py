"""Schedule sanitizer: fault injection + clean-run silence.

Every SAN rule is demonstrated both ways: a hand-crafted corrupt trace
triggers exactly its code, and a clean run of every shipped scenario
smoke produces zero findings.  The differential determinism legs are
exercised for real (two fresh ``PYTHONHASHSEED`` subprocesses must
digest identically) and in isolation (the comparison helper fires
SAN008 on injected divergent digests).
"""

from __future__ import annotations

import pytest

from repro.analysis.differential import (
    compare_digests,
    differential_check,
    scenario_digest,
    subprocess_digest,
)
from repro.analysis.sanitizer import (
    MAX_FINDINGS_PER_RULE,
    SAN_RULES,
    PullPolicy,
    analyze_trace,
    check_conservation,
    check_overlaps,
    check_pull_policy,
    check_truncation,
    run_digest,
    sanitize_system,
    trace_digest,
)
from repro.harness.scenarios import scenario_smokes
from repro.metrics.trace import TraceRecorder
from repro.topology import presets
from repro.topology.machine import DomainLevel

SMOKES = scenario_smokes()


def codes(findings):
    return sorted({f.code for f in findings})


def pull_policy(
    cores=(0, 1),
    tids=(1,),
    interval_us=100_000,
    block_intervals=2.0,
    numa_enabled=True,
    numa_mult=1.0,
):
    return PullPolicy(
        cores=frozenset(cores),
        tids=frozenset(tids),
        interval_us=interval_us,
        block_intervals=block_intervals,
        level_enabled={lvl: True for lvl in DomainLevel} | {DomainLevel.NUMA: numa_enabled},
        level_block_multiplier={lvl: 1.0 for lvl in DomainLevel}
        | {DomainLevel.NUMA: numa_mult},
    )


# ----------------------------------------------------------------------
# fault injection: each rule fires on its crafted corruption, alone
# ----------------------------------------------------------------------
class TestFaultInjection:
    def test_san001_migration_race(self):
        trace = TraceRecorder()
        trace.record(1, "t", 0, 0, 100, "compute")
        trace.record(1, "t", 1, 50, 150, "compute")
        found = check_overlaps(trace)
        assert codes(found) == ["SAN001"]
        assert "cores 0 and 1" in found[0].message
        assert len(found[0].citations) == 2

    def test_san002_double_charge(self):
        trace = TraceRecorder()
        trace.record(1, "a", 0, 0, 100, "compute")
        trace.record(2, "b", 0, 50, 150, "compute")
        found = check_overlaps(trace)
        assert codes(found) == ["SAN002"]
        assert "core 0 charged twice" in found[0].message

    def test_adjacent_segments_are_clean(self):
        # back-to-back [0,100) [100,200) on one core and a migration
        # landing exactly at a segment boundary must not alarm
        trace = TraceRecorder()
        trace.record(1, "a", 0, 0, 100, "compute")
        trace.record(2, "b", 0, 100, 200, "compute")
        trace.record(1, "a", 1, 100, 200, "compute")
        assert check_overlaps(trace) == []

    def test_san003_task_drift(self):
        trace = TraceRecorder()
        trace.record(1, "t", 0, 0, 100, "compute")
        found = check_conservation(trace, task_exec_us={1: 150})
        assert codes(found) == ["SAN003"]
        assert "drift -50us" in found[0].message

    def test_san003_unknown_task(self):
        trace = TraceRecorder()
        trace.record(7, "ghost", 0, 0, 100, "compute")
        found = check_conservation(trace, task_exec_us={})
        assert codes(found) == ["SAN003"]
        assert "accounting does not know" in found[0].message

    def test_san004_core_drift(self):
        trace = TraceRecorder()
        trace.record(1, "t", 0, 0, 100, "compute")
        found = check_conservation(trace, core_busy_us={0: 90})
        assert codes(found) == ["SAN004"]
        assert "drift +10us" in found[0].message

    def test_san005_pull_inside_block_window(self):
        trace = TraceRecorder()
        trace.record_migration(0, 1, "t", 0, 1, False, "speed.pull")
        # window is 2.0 * 100_000 = 200_000us; this pull is 100_000 in
        trace.record_migration(100_000, 1, "t", 1, 0, False, "speed.pull")
        found = check_pull_policy(trace, [pull_policy()])
        assert codes(found) == ["SAN005"]
        assert "t=100000" in found[0].message

    def test_san005_silent_outside_window(self):
        trace = TraceRecorder()
        trace.record_migration(0, 1, "t", 0, 1, False, "speed.pull")
        trace.record_migration(200_000, 1, "t", 1, 0, False, "speed.pull")
        assert check_pull_policy(trace, [pull_policy()]) == []

    def test_san005_non_pull_reasons_do_not_open_windows(self):
        trace = TraceRecorder()
        trace.record_migration(0, 1, "t", None, 1, False, "speed.initial")
        trace.record_migration(10, 1, "t", 0, 1, True, "linux.cache")
        trace.record_migration(20, 1, "t", 1, 0, False, "speed.pull")
        assert check_pull_policy(trace, [pull_policy()]) == []

    def test_san006_pull_across_numa_fence(self):
        machine = presets.barcelona()  # sockets {0..3}, {4..7}, ... NUMA
        trace = TraceRecorder()
        trace.record_migration(0, 1, "t", 0, 4, False, "speed.pull")
        policy = pull_policy(cores=(0, 4), numa_enabled=False)
        found = check_pull_policy(trace, [policy], machine=machine)
        assert codes(found) == ["SAN006"]
        assert "NUMA" in found[0].message

    def test_san006_silent_when_numa_enabled(self):
        machine = presets.barcelona()
        trace = TraceRecorder()
        trace.record_migration(0, 1, "t", 0, 4, False, "speed.pull")
        policy = pull_policy(cores=(0, 4), numa_enabled=True)
        assert check_pull_policy(trace, [policy], machine=machine) == []

    def test_numa_block_multiplier_scales_window(self):
        # same-socket window is 200_000; the NUMA multiplier stretches
        # the cross-node source's window to 400_000
        machine = presets.barcelona()
        policy = pull_policy(cores=(0, 1, 4), numa_enabled=True, numa_mult=2.0)
        trace = TraceRecorder()
        trace.record_migration(0, 1, "t", 4, 0, False, "speed.pull")
        # 300_000 > plain window but < scaled window for src=4 (NUMA
        # relative to dst=0), so pulling from 4 again is a violation
        trace.record_migration(300_000, 1, "t", 4, 0, False, "speed.pull")
        found = check_pull_policy(trace, [policy], machine=machine)
        assert codes(found) == ["SAN005"]

    def test_san007_truncated(self):
        trace = TraceRecorder(limit=1)
        trace.record(1, "a", 0, 0, 100, "compute")
        trace.record(2, "b", 1, 0, 100, "compute")
        found = check_truncation(trace)
        assert codes(found) == ["SAN007"]
        assert "1 segments" in found[0].message

    def test_san007_suppresses_conservation(self):
        # an incomplete trace must not produce phantom drift findings
        trace = TraceRecorder(limit=1)
        trace.record(1, "a", 0, 0, 100, "compute")
        trace.record(1, "a", 0, 100, 200, "compute")
        found = analyze_trace(trace, task_exec_us={1: 200}, core_busy_us={0: 200})
        assert codes(found) == ["SAN007"]

    def test_san008_divergent_digests(self):
        found = compare_digests("hashseed", "aaa", "bbb", context="x")
        assert codes(found) == ["SAN008"]
        assert found[0].citations == ("digest A: aaa", "digest B: bbb")
        assert compare_digests("hashseed", "same", "same") == []

    def test_per_rule_cap(self):
        trace = TraceRecorder()
        for i in range(2 * MAX_FINDINGS_PER_RULE):
            trace.record(i, "t", 0, 0, 100, "compute")
        found = check_overlaps(trace)
        assert len(found) == MAX_FINDINGS_PER_RULE
        assert "suppressed" in found[-1].message

    def test_every_rule_has_catalogue_entry(self):
        assert sorted(SAN_RULES) == [f"SAN00{i}" for i in range(1, 9)]


# ----------------------------------------------------------------------
# clean runs: every shipped scenario sanitizes silently
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(SMOKES))
def test_clean_scenarios_have_zero_findings(name):
    result, system = SMOKES[name].run(seed=0)
    findings = sanitize_system(system, result=result, context=name)
    assert findings == []
    # the run actually recorded history worth auditing
    assert system.trace.segments
    assert system.trace.migrations


def test_sanitize_requires_trace():
    result, system = SMOKES["balance-interval"].run(seed=0)
    system.trace = None
    with pytest.raises(ValueError, match="trace"):
        sanitize_system(system)


def test_tampered_result_is_caught():
    result, system = SMOKES["balance-interval"].run(seed=0)
    result.thread_exec_us[0] += 1
    findings = sanitize_system(system, result=result)
    assert codes(findings) == ["SAN003"]


def test_tampered_core_accounting_is_caught():
    result, system = SMOKES["balance-interval"].run(seed=0)
    system.cores[0].stats.busy_us += 7
    findings = sanitize_system(system, result=result)
    assert "SAN004" in codes(findings)


# ----------------------------------------------------------------------
# canonical digests
# ----------------------------------------------------------------------
def test_trace_digest_is_tid_canonical():
    a, b = TraceRecorder(), TraceRecorder()
    for base, t in ((0, a), (1000, b)):  # same history, shifted tid space
        t.record(base + 1, "x", 0, 0, 100, "compute")
        t.record(base + 2, "y", 1, 0, 100, "compute")
        t.record_migration(100, base + 1, "x", 0, 1, False, "speed.pull")
    assert trace_digest(a) == trace_digest(b)


def test_trace_digest_sees_order_and_content():
    a, b, c = TraceRecorder(), TraceRecorder(), TraceRecorder()
    a.record(1, "x", 0, 0, 100, "compute")
    a.record(2, "y", 1, 0, 100, "compute")
    b.record(2, "y", 1, 0, 100, "compute")  # same segments, other order
    b.record(1, "x", 0, 0, 100, "compute")
    c.record(1, "x", 0, 0, 101, "compute")  # one boundary differs
    c.record(2, "y", 1, 0, 100, "compute")
    assert len({trace_digest(a), trace_digest(b), trace_digest(c)}) == 3


def test_run_digest_folds_all_parts():
    result, system = SMOKES["balance-interval"].run(seed=0)
    full = run_digest(result, system.trace, system.engine)
    assert full == run_digest(result, system.trace, system.engine)
    assert full != run_digest(result, system.trace)  # engine part matters
    assert full != run_digest(result)


def test_rerun_digests_identical_and_seed_sensitive():
    assert scenario_digest("balance-interval", seed=0) == scenario_digest(
        "balance-interval", seed=0
    )
    assert scenario_digest("balance-interval", seed=0) != scenario_digest(
        "balance-interval", seed=1
    )


# ----------------------------------------------------------------------
# differential determinism
# ----------------------------------------------------------------------
def test_hashseed_subprocess_digests_agree():
    # two fresh interpreters under different hash randomization must
    # reproduce the run bit-identically -- and match this process too
    a = subprocess_digest("balance-interval", hashseed=1)
    b = subprocess_digest("balance-interval", hashseed=2)
    assert a == b
    assert a == scenario_digest("balance-interval")


def test_observer_leg_in_process():
    assert differential_check("balance-interval", legs=("observers",)) == []


def test_workers_leg_serial_vs_parallel():
    assert differential_check("balance-interval", legs=("workers",)) == []


def test_engines_leg_heap_vs_batched():
    # the calendar-queue backend must reproduce the heap's run digest
    # bit for bit (events, trace and engine fingerprint)
    assert differential_check("balance-interval", legs=("engines",)) == []


def test_scenario_digest_engine_parity_and_perturbation():
    heap = scenario_digest("balance-interval", engine="heap")
    assert heap == scenario_digest("balance-interval", engine="batched")
    # the digest still discriminates real behaviour changes
    assert heap != scenario_digest("balance-interval", seed=1, engine="batched")


def test_unknown_leg_rejected():
    with pytest.raises(ValueError, match="unknown differential legs"):
        differential_check("balance-interval", legs=("observers", "nope"))
