"""Smoke tests for the named harness scenarios (tiny parameters).

The full-size versions run in benchmarks/; these verify the scenario
plumbing (factories, keys, aggregation) quickly.
"""

from repro.harness import scenarios
from repro.metrics.results import RepeatedResult


class TestEpSpeedupSeries:
    def test_returns_per_core_results(self):
        out = scenarios.ep_speedup_series(
            balancer="pinned", core_counts=[2, 4], seeds=range(2),
            total_compute_us=50_000,
        )
        assert set(out) == {2, 4}
        assert all(isinstance(v, RepeatedResult) for v in out.values())
        assert out[4].mean_speedup > out[2].mean_speedup

    def test_one_per_core_scales(self):
        out = scenarios.ep_speedup_series(
            one_per_core=True, core_counts=[2, 4], seeds=range(2),
            total_compute_us=50_000,
        )
        assert out[4].mean_speedup > 3.5


class TestBalanceIntervalSweep:
    def test_keys_are_period_interval_pairs(self):
        out = scenarios.balance_interval_sweep(
            barrier_periods_us=[1_000],
            balance_intervals_us=[50_000],
            total_compute_us=50_000,
            seeds=range(1),
        )
        assert list(out) == [(1_000, 50_000)]


class TestNpbImprovement:
    def test_grid_keys(self):
        out = scenarios.npb_improvement(
            benches=["sp.A"], core_counts=[4], balancers=["pinned"],
            seeds=range(1), total_compute_us=20_000,
        )
        assert list(out) == [("sp.A", 4, "pinned")]


class TestCpuHogSeries:
    def test_hog_limits_one_per_core(self):
        out = scenarios.cpu_hog_series(
            balancer="pinned", one_per_core=True, core_counts=[2],
            seeds=range(1), total_compute_us=50_000,
        )
        # one thread per core with a hog on core 0: half speed
        assert out[2].mean_speedup < 1.3


class TestMakeShareSeries:
    def test_returns_bench_mode_grid(self):
        out = scenarios.make_share_series(
            benches=["sp.A"], balancers=["pinned"], seeds=range(1),
            total_compute_us=20_000, j=2,
        )
        assert list(out) == [("sp.A", "pinned")]


class TestWaitPolicies:
    def test_registry_contents(self):
        assert set(scenarios.WAIT_POLICIES) >= {
            "yield", "sleep", "spin", "omp-default", "omp-infinite",
        }


class TestCorunnerSpec:
    def test_unknown_kind_rejected(self, tigerton_system):
        import pytest

        with pytest.raises(ValueError, match="unknown co-runner kind"):
            scenarios.CorunnerSpec("dd-bench").build(tigerton_system)

    def test_specs_are_storable(self):
        from repro.store import canonical_value, digest_of

        a = scenarios.CorunnerSpec("cpu-hog", core=0)
        b = scenarios.CorunnerSpec("make-j", j=4, jobs=8)
        assert digest_of(canonical_value(a)) != digest_of(canonical_value(b))


class TestScenarioStoreParity:
    """Cache-hit results must be byte-identical to cache-miss results,
    one representative configuration per scenario family."""

    def _parity(self, tmp_path, name):
        from repro.analysis.sanitizer import run_digest
        from repro.service import JobService
        from repro.store import ResultStore

        smoke = scenarios.scenario_smokes()[name]
        fresh, _ = smoke.run(seed=0)

        store = ResultStore(tmp_path / "s")
        miss = JobService(store)
        (stored,) = miss.submit([smoke.spec(seed=0)])
        assert miss.executed == 1
        hit = JobService(store)
        (cached,) = hit.submit([smoke.spec(seed=0)])
        assert hit.executed == 0

        assert run_digest(stored) == run_digest(fresh)
        assert run_digest(cached) == run_digest(fresh)

    def test_parity_ep_speedup(self, tmp_path):
        self._parity(tmp_path, "ep-speedup")

    def test_parity_balance_interval(self, tmp_path):
        self._parity(tmp_path, "balance-interval")

    def test_parity_npb(self, tmp_path):
        self._parity(tmp_path, "npb-speed")

    def test_parity_cpu_hog(self, tmp_path):
        self._parity(tmp_path, "cpu-hog")

    def test_parity_make_share(self, tmp_path):
        self._parity(tmp_path, "make-share")

    def test_scenario_store_path_end_to_end(self, tmp_path):
        """A scenario function with store= executes zero runs the
        second time and returns identical aggregates."""
        from repro.service import JobService
        from repro.store import ResultStore

        store = ResultStore(tmp_path / "s")
        kwargs = dict(core_counts=[2], n_threads=4, seeds=range(2),
                      total_compute_us=50_000)
        svc = JobService(store)
        first = scenarios.ep_speedup_series(store=svc, **kwargs)
        assert svc.executed == 2
        svc2 = JobService(store)
        second = scenarios.ep_speedup_series(store=svc2, **kwargs)
        assert svc2.executed == 0
        assert first[2].mean_speedup == second[2].mean_speedup
        nostore = scenarios.ep_speedup_series(**kwargs)
        assert nostore[2].mean_speedup == first[2].mean_speedup

    def test_omp_wait_policies_unstorable_but_runnable(self, tmp_path):
        """The OMP wait flavors fall back to closures: they run fine
        without a store and fail loudly with one."""
        import pytest

        from repro.store import UnstorableSpecError

        kwargs = dict(core_counts=[2], n_threads=3, seeds=range(1),
                      total_compute_us=30_000, wait="omp-default")
        out = scenarios.ep_speedup_series(**kwargs)
        assert out[2].runs[0].elapsed_us > 0
        with pytest.raises(UnstorableSpecError):
            scenarios.ep_speedup_series(store=str(tmp_path / "s"), **kwargs)
