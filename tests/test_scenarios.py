"""Smoke tests for the named harness scenarios (tiny parameters).

The full-size versions run in benchmarks/; these verify the scenario
plumbing (factories, keys, aggregation) quickly.
"""

from repro.harness import scenarios
from repro.metrics.results import RepeatedResult


class TestEpSpeedupSeries:
    def test_returns_per_core_results(self):
        out = scenarios.ep_speedup_series(
            balancer="pinned", core_counts=[2, 4], seeds=range(2),
            total_compute_us=50_000,
        )
        assert set(out) == {2, 4}
        assert all(isinstance(v, RepeatedResult) for v in out.values())
        assert out[4].mean_speedup > out[2].mean_speedup

    def test_one_per_core_scales(self):
        out = scenarios.ep_speedup_series(
            one_per_core=True, core_counts=[2, 4], seeds=range(2),
            total_compute_us=50_000,
        )
        assert out[4].mean_speedup > 3.5


class TestBalanceIntervalSweep:
    def test_keys_are_period_interval_pairs(self):
        out = scenarios.balance_interval_sweep(
            barrier_periods_us=[1_000],
            balance_intervals_us=[50_000],
            total_compute_us=50_000,
            seeds=range(1),
        )
        assert list(out) == [(1_000, 50_000)]


class TestNpbImprovement:
    def test_grid_keys(self):
        out = scenarios.npb_improvement(
            benches=["sp.A"], core_counts=[4], balancers=["pinned"],
            seeds=range(1), total_compute_us=20_000,
        )
        assert list(out) == [("sp.A", 4, "pinned")]


class TestCpuHogSeries:
    def test_hog_limits_one_per_core(self):
        out = scenarios.cpu_hog_series(
            balancer="pinned", one_per_core=True, core_counts=[2],
            seeds=range(1), total_compute_us=50_000,
        )
        # one thread per core with a hog on core 0: half speed
        assert out[2].mean_speedup < 1.3


class TestMakeShareSeries:
    def test_returns_bench_mode_grid(self):
        out = scenarios.make_share_series(
            benches=["sp.A"], balancers=["pinned"], seeds=range(1),
            total_compute_us=20_000, j=2,
        )
        assert list(out) == [("sp.A", "pinned")]


class TestWaitPolicies:
    def test_registry_contents(self):
        assert set(scenarios.WAIT_POLICIES) >= {
            "yield", "sleep", "spin", "omp-default", "omp-infinite",
        }
