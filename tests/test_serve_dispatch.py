"""Tests for serve-layer fairness primitives (tenants, dispatch, metrics)."""

import pytest

from repro.serve.dispatch import SpeedAwareDispatcher
from repro.serve.metrics import ServeMetrics, percentile
from repro.serve.tenants import (
    AdmissionError,
    ServiceWindow,
    Tenant,
    TenantConfig,
    TokenBucket,
)
from repro.serve.workers import ShardedStore, shard_index


class FakeClock:
    """A hand-cranked clock so fairness tests never sleep."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def tick(self, dt):
        self.now += dt


def _tenant(clock, name="t", weight=1.0, rate=50.0, burst=100.0, limit=512):
    return Tenant(
        TenantConfig(
            name=name, weight=weight, rate=rate, burst=burst,
            queue_limit=limit,
        ),
        window_s=10.0,
        clock=clock,
    )


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=10.0, burst=5.0)
        assert bucket.take(5, now=0.0) is None  # full burst drains
        wait = bucket.take(1, now=0.0)
        assert wait == pytest.approx(0.1)  # 1 token at 10/s
        assert bucket.take(1, now=0.2) is None  # refilled meanwhile

    def test_rejection_consumes_nothing(self):
        bucket = TokenBucket(rate=10.0, burst=5.0)
        assert bucket.take(4, now=0.0) is None
        assert bucket.take(4, now=0.0) is not None  # rejected
        assert bucket.available(0.0) == pytest.approx(1.0)  # untouched

    def test_over_burst_request_reports_full_drain(self):
        bucket = TokenBucket(rate=10.0, burst=5.0)
        assert bucket.take(50, now=0.0) == pytest.approx(5.0)


class TestServiceWindow:
    def test_rate_decays_as_samples_expire(self):
        win = ServiceWindow(window_s=10.0)
        win.record(now=0.0, busy_s=5.0)
        assert win.rate(now=0.0) == pytest.approx(0.5)
        assert win.rate(now=9.0) == pytest.approx(0.5)
        assert win.rate(now=11.0) == 0.0  # sample aged out


class TestAdmission:
    def test_batch_is_atomic_on_queue_overflow(self):
        clock = FakeClock()
        tenant = _tenant(clock, limit=3)
        tenant.admit(["a", "b"], now=0.0)
        with pytest.raises(AdmissionError):
            tenant.admit(["c", "d"], now=0.0)  # only 1 slot left
        assert list(tenant.queue) == ["a", "b"]  # nothing admitted
        assert tenant.counters.rejected == 2

    def test_rate_rejection_carries_retry_after(self):
        clock = FakeClock()
        tenant = _tenant(clock, rate=10.0, burst=4.0)
        tenant.admit(["a", "b", "c", "d"], now=0.0)
        with pytest.raises(AdmissionError) as err:
            tenant.admit(["e", "f"], now=0.0)
        assert err.value.retry_after_s == pytest.approx(0.2)
        assert list(tenant.queue) == ["a", "b", "c", "d"]

    def test_pop_routable_preserves_per_shard_fifo(self):
        clock = FakeClock()
        tenant = _tenant(clock)
        tenant.admit(["aa", "bb", "ab", "ba"], now=0.0)
        starts_a = lambda d: d.startswith("a")  # noqa: E731
        assert tenant.pop_routable(starts_a) == "aa"
        assert tenant.pop_routable(starts_a) == "ab"
        assert tenant.pop_routable(starts_a) is None
        assert list(tenant.queue) == ["bb", "ba"]  # order intact
        assert tenant.has_routable(lambda d: d.startswith("b"))


class TestSpeedAwareDispatcher:
    def test_prefers_slowest_served_tenant(self):
        clock = FakeClock()
        fast = _tenant(clock, name="fast")
        slow = _tenant(clock, name="slow")
        fast.admit(["f1"], now=0.0)
        slow.admit(["s1"], now=0.0)
        fast.record_service(5.0)  # fast already got lots of service
        picked = SpeedAwareDispatcher().pick([fast, slow], now=0.0)
        assert picked is slow

    def test_weight_scales_entitlement(self):
        clock = FakeClock()
        heavy = _tenant(clock, name="heavy", weight=4.0)
        light = _tenant(clock, name="light", weight=1.0)
        heavy.admit(["h1"], now=0.0)
        light.admit(["l1"], now=0.0)
        # equal raw service, but heavy's weight-4 entitlement makes its
        # per-weight share a quarter of light's
        heavy.record_service(2.0)
        light.record_service(2.0)
        picked = SpeedAwareDispatcher().pick([light, heavy], now=0.0)
        assert picked is heavy

    def test_ties_break_on_name_and_empty_queues_skip(self):
        clock = FakeClock()
        a = _tenant(clock, name="a")
        b = _tenant(clock, name="b")
        b.admit(["x"], now=0.0)
        dispatcher = SpeedAwareDispatcher()
        assert dispatcher.pick([a, b], now=0.0) is b  # a has no work
        a.admit(["y"], now=0.0)
        assert dispatcher.pick([b, a], now=0.0) is a  # tie -> name order
        assert dispatcher.decisions == 2

    def test_eligibility_predicate_narrows_candidates(self):
        clock = FakeClock()
        a = _tenant(clock, name="a")
        b = _tenant(clock, name="b")
        a.admit(["a-job"], now=0.0)
        b.admit(["b-job"], now=0.0)
        picked = SpeedAwareDispatcher().pick(
            [a, b], now=0.0,
            eligible=lambda t: t.has_routable(lambda d: d.startswith("b")),
        )
        assert picked is b

    def test_starvation_free_under_flood(self):
        """A flooding tenant cannot monopolize: shares level out."""
        clock = FakeClock()
        flood = _tenant(clock, name="flood")
        meek = _tenant(clock, name="meek")
        flood.admit([f"f{i}" for i in range(50)], now=0.0)
        meek.admit(["m0", "m1"], now=0.0)
        dispatcher = SpeedAwareDispatcher()
        order = []
        for _ in range(10):
            tenant = dispatcher.pick([flood, meek], now=clock.now)
            digest = tenant.pop()
            order.append(digest)
            tenant.record_service(1.0)  # every job costs 1 busy second
            clock.tick(1.0)
        # both meek jobs are served within the first four decisions
        assert {"m0", "m1"} <= set(order[:4])


class TestMetrics:
    def test_percentile_interpolates(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 4.0
        assert percentile(samples, 50) == pytest.approx(2.5)
        assert percentile([], 99) == 0.0
        with pytest.raises(ValueError):
            percentile(samples, 101)

    def test_snapshot_counts_and_ratio(self):
        clock = FakeClock()
        metrics = ServeMetrics(clock=clock)
        tenant = _tenant(clock, name="t")
        metrics.submitted += 3
        metrics.admitted += 2
        metrics.deduped += 1
        metrics.record_completion("done", 0.5)
        metrics.record_completion("cached", 0.1)
        metrics.record_worker_busy(0, 2.0)
        clock.tick(10.0)
        snap = metrics.snapshot([tenant], n_workers=2, inflight={})
        assert snap["completed"] == 2
        assert snap["executed"] == 1
        assert snap["cached"] == 1
        # hits = cached + deduped = 2 of 3 lookups
        assert snap["cache_hit_ratio"] == pytest.approx(2 / 3)
        assert snap["latency"]["p50_s"] == pytest.approx(0.3)
        assert snap["workers"]["utilization"] == pytest.approx(0.1)
        assert "t" in snap["tenants"]


class TestSharding:
    def test_shard_index_partitions_uniformly_enough(self):
        digests = [f"{i:02x}" + "0" * 62 for i in range(256)]
        counts = [0, 0, 0]
        for d in digests:
            counts[shard_index(d, 3)] += 1
        assert sum(counts) == 256
        assert min(counts) > 0

    def test_sharded_store_routes_reads(self, tmp_path):
        store = ShardedStore(tmp_path, 4)
        digest = "ab" + "0" * 62
        owner = store.shard_for(digest)
        assert owner is store.shards[shard_index(digest, 4)]
        assert not store.contains(digest)
        assert store.digests() == []
        assert store.verify() == []
