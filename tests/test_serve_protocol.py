"""Tests for the serving wire protocol (repro.serve.protocol)."""

import asyncio
import json

import pytest

from repro.apps.workloads import AppSpec
from repro.harness.parallel import RunSpec
from repro.serve.protocol import (
    ProtocolError,
    Response,
    error_body,
    json_response,
    read_request,
    spec_from_wire,
    spec_to_wire,
    sse_event,
    value_from_wire,
    wire_digest,
)
from repro.store.keys import spec_digest


def _spec(seed=0, balancer="speed", **params):
    app = AppSpec(bench="ep.C", n_threads=4, total_compute_us=40_000)
    return RunSpec.make(
        "tigerton", app, balancer=balancer, cores=2, seed=seed, **params
    )


class TestSpecCodec:
    def test_wire_digest_is_store_digest(self):
        spec = _spec()
        assert wire_digest(spec_to_wire(spec)) == spec_digest(spec)

    @pytest.mark.parametrize("balancer", ["speed", "load", "pinned", "ule"])
    def test_round_trip_preserves_digest(self, balancer):
        spec = _spec(seed=3, balancer=balancer)
        wire = json.loads(json.dumps(spec_to_wire(spec)))  # through JSON
        assert spec_digest(spec_from_wire(wire)) == wire_digest(wire)

    def test_round_trip_with_params_and_core_list(self):
        from repro.core.speed_balancer import SpeedBalancerConfig

        app = AppSpec(bench="cg.B", n_threads=6, total_compute_us=30_000)
        spec = RunSpec.make(
            "barcelona",
            app,
            balancer="speed",
            cores=(0, 2, 4),
            seed=11,
            engine="batched",
            speed_config=SpeedBalancerConfig(),
        )
        wire = json.loads(json.dumps(spec_to_wire(spec)))
        rebuilt = spec_from_wire(wire)
        assert rebuilt == spec
        assert spec_digest(rebuilt) == wire_digest(wire)

    def test_rejects_non_repro_references(self):
        wire = spec_to_wire(_spec())
        wire["app"] = {"__function__": "os:system"}
        with pytest.raises(ProtocolError, match="outside the repro package"):
            spec_from_wire(wire)

    def test_rejects_wrong_kind_and_missing_fields(self):
        with pytest.raises(ProtocolError, match="kind"):
            spec_from_wire({"kind": "value"})
        wire = spec_to_wire(_spec())
        del wire["seed"]
        with pytest.raises(ProtocolError, match="missing"):
            spec_from_wire(wire)

    def test_rejects_non_object_and_bad_seed(self):
        with pytest.raises(ProtocolError, match="object"):
            spec_from_wire([1, 2])
        wire = spec_to_wire(_spec())
        wire["seed"] = "zero"
        with pytest.raises(ProtocolError, match="seed"):
            spec_from_wire(wire)

    def test_value_from_wire_rejects_unknown_enum_member(self):
        with pytest.raises(ProtocolError, match="no member"):
            value_from_wire(
                {"__enum__": "repro.sched.task:WaitMode.NOPE"}
            )


class TestHttpPrimitives:
    def _parse(self, raw: bytes):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            return await read_request(reader)

        return asyncio.run(go())

    def test_parses_request_line_query_headers_body(self):
        body = b'{"x": 1}'
        raw = (
            b"POST /v1/jobs?tenant=alice HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"\r\n" + body
        )
        req = self._parse(raw)
        assert (req.method, req.path) == ("POST", "/v1/jobs")
        assert req.query == {"tenant": "alice"}
        assert req.headers["content-type"] == "application/json"
        assert req.json() == {"x": 1}

    def test_clean_close_returns_none(self):
        assert self._parse(b"") is None

    def test_malformed_request_line_raises(self):
        with pytest.raises(ProtocolError, match="malformed request line"):
            self._parse(b"NONSENSE\r\n\r\n")

    def test_oversized_body_rejected_before_read(self):
        raw = (
            b"POST /v1/jobs HTTP/1.1\r\n"
            b"Content-Length: 999999999\r\n\r\n"
        )
        with pytest.raises(ProtocolError, match="exceeds"):
            self._parse(raw)

    def test_bad_json_body_raises_on_decode(self):
        raw = (
            b"POST /v1/jobs HTTP/1.1\r\n"
            b"Content-Length: 3\r\n\r\nnot"
        )
        with pytest.raises(ProtocolError, match="not valid JSON"):
            self._parse(raw).json()

    def test_response_encode_has_length_and_close(self):
        resp = json_response(error_body(404, "nope"), 404)
        raw = resp.encode().decode()
        head, _, body = raw.partition("\r\n\r\n")
        assert head.startswith("HTTP/1.1 404 Not Found")
        assert f"Content-Length: {len(body.encode())}" in head
        assert "Connection: close" in head
        assert json.loads(body) == {"error": "nope", "status": 404}

    def test_streaming_encode_omits_length(self):
        raw = Response(200, content_type="text/event-stream").encode(
            streaming=True
        ).decode()
        assert "Content-Length" not in raw
        assert raw.endswith("\r\n\r\n")


class TestSse:
    def test_event_framing(self):
        block = sse_event("status", {"state": "running"}).decode()
        assert block == 'event: status\ndata: {"state": "running"}\n\n'
