"""End-to-end tests for the serving daemon (repro.serve.server).

Each test boots a real daemon on an ephemeral port (thread-backend
workers unless the test is specifically about process kills) and talks
to it through :class:`repro.serve.ServeClient` -- the same HTTP path
production traffic takes.
"""

import json
import threading
import time

import pytest

from repro.apps.workloads import AppSpec
from repro.harness.parallel import RunSpec
from repro.metrics.export import result_to_dict
from repro.metrics.results import AppRunResult
from repro.serve import (
    BackgroundServer,
    ServeClient,
    ServeConfig,
    ServeError,
    TenantConfig,
)
from repro.serve.server import SNAPSHOT_NAME
from repro.service import run_specs_cached


def _spec(seed=0, balancer="speed"):
    app = AppSpec(bench="ep.C", n_threads=4, total_compute_us=40_000)
    return RunSpec.make(
        "tigerton", app, balancer=balancer, cores=2, seed=seed
    )


def _fake_result(spec):
    return AppRunResult(
        app_name="fake",
        balancer=spec.balancer,
        n_cores=2,
        n_threads=2,
        seed=spec.seed,
        elapsed_us=1_000,
        total_work_us=2_000,
        migrations=0,
        thread_exec_us=[1_000, 1_000],
        thread_compute_us=[1_000, 1_000],
        thread_finish_us=[1_000, 1_000],
    )


#: module-level counters shared with thread-backend workers
_RUN_LOG: list[str] = []
_RUN_LOCK = threading.Lock()


def _counting_runner(spec):
    with _RUN_LOCK:
        _RUN_LOG.append(f"{spec.balancer}/{spec.seed}")
    time.sleep(0.01)
    return _fake_result(spec)


def _slow_runner(spec):
    with _RUN_LOCK:
        _RUN_LOG.append(f"{spec.balancer}/{spec.seed}")
    time.sleep(0.05)
    return _fake_result(spec)


@pytest.fixture(autouse=True)
def _reset_run_log():
    with _RUN_LOCK:
        _RUN_LOG.clear()
    yield


def self_store_has(bg, digest):
    return bg.server.store.contains(digest)


def _boot(tmp_path, **overrides):
    config = ServeConfig(
        store_root=str(tmp_path / "serve-store"),
        port=0,
        backend="thread",
        **overrides,
    )
    return BackgroundServer(config).start()


class TestParity:
    def test_served_results_byte_identical_to_direct(self, tmp_path):
        """The correctness bar: serve == run_specs_cached, byte for byte."""
        specs = [_spec(seed=7, balancer=b) for b in ("speed", "load")]
        bg = _boot(tmp_path, workers=2)
        try:
            client = ServeClient(bg.base_url)
            resp = client.submit(specs, tenant="parity")
            views = [
                client.wait(j["digest"], poll_s=0.02, timeout_s=60)
                for j in resp["jobs"]
            ]
            assert all(v["state"] == "done" for v in views)
            served = {
                v["digest"]: client.result(v["digest"])["result"]
                for v in views
            }
        finally:
            bg.drain()

        direct = run_specs_cached(
            specs, store=str(tmp_path / "direct-store"), workers=1
        )
        from repro.store.keys import spec_digest

        for spec, result in zip(specs, direct):
            a = json.dumps(served[spec_digest(spec)], sort_keys=True)
            b = json.dumps(result_to_dict(result), sort_keys=True)
            assert a == b

    def test_restart_serves_from_store_without_rerun(self, tmp_path):
        spec = _spec(seed=1)
        bg = _boot(tmp_path, workers=1, runner=_counting_runner)
        try:
            client = ServeClient(bg.base_url)
            (job,) = client.submit([spec])["jobs"]
            assert client.wait(job["digest"], poll_s=0.02)["state"] == "done"
        finally:
            bg.drain()
        assert len(_RUN_LOG) == 1

        bg2 = _boot(tmp_path, workers=1, runner=_counting_runner)
        try:
            client = ServeClient(bg2.base_url)
            (job,) = client.submit([spec])["jobs"]
            assert job["state"] == "cached"  # store hit, no queue slot
            snap = client.metrics()
            assert snap["cached"] == 1
        finally:
            bg2.drain()
        assert len(_RUN_LOG) == 1  # never re-executed


class TestDedup:
    def test_same_digest_executes_once(self, tmp_path):
        spec = _spec(seed=2)
        bg = _boot(tmp_path, workers=1, runner=_counting_runner)
        try:
            client = ServeClient(bg.base_url)
            digest = client.submit([spec, spec])["jobs"][0]["digest"]
            client.submit([spec])  # resubmission attaches, never re-runs
            client.wait(digest, poll_s=0.02, timeout_s=30)
            snap = client.metrics()
            assert snap["submitted"] == 3
            assert snap["deduped"] >= 1
        finally:
            bg.drain()
        assert len(_RUN_LOG) == 1

    def test_concurrent_submitters_one_execution(self, tmp_path):
        spec = _spec(seed=3)
        bg = _boot(tmp_path, workers=1, runner=_counting_runner)
        try:
            url = bg.base_url
            views, errors = [], []

            def submit():
                try:
                    client = ServeClient(url)
                    (job,) = client.submit([spec])["jobs"]
                    views.append(client.wait(job["digest"], poll_s=0.02))
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            threads = [threading.Thread(target=submit) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert {v["state"] for v in views} <= {"done", "cached"}
        finally:
            bg.drain()
        assert len(_RUN_LOG) == 1


class TestSse:
    def test_stream_replays_full_lifecycle_in_order(self, tmp_path):
        spec = _spec(seed=4)
        bg = _boot(tmp_path, workers=1, runner=_slow_runner)
        try:
            client = ServeClient(bg.base_url)
            (job,) = client.submit([spec])["jobs"]
            events = list(client.events(job["digest"]))
        finally:
            bg.drain()
        names = [e for e, _ in events]
        assert names[-1] == "end"
        states = [d["state"] for e, d in events if e == "status"]
        # the full ordered lifecycle, even if we subscribed mid-run
        assert states == ["pending", "running", "done"]
        assert events[-1][1]["state"] == "done"

    def test_stream_after_terminal_replays_and_ends(self, tmp_path):
        spec = _spec(seed=5)
        bg = _boot(tmp_path, workers=1, runner=_counting_runner)
        try:
            client = ServeClient(bg.base_url)
            (job,) = client.submit([spec])["jobs"]
            client.wait(job["digest"], poll_s=0.02)
            events = list(client.events(job["digest"]))
        finally:
            bg.drain()
        states = [d["state"] for e, d in events if e == "status"]
        assert states == ["pending", "running", "done"]

    def test_unknown_job_events_404(self, tmp_path):
        bg = _boot(tmp_path, workers=1)
        try:
            client = ServeClient(bg.base_url)
            with pytest.raises(ServeError) as err:
                list(client.events("ab" * 32))
            assert err.value.status == 404
        finally:
            bg.drain()


class TestBackpressure:
    def test_over_rate_batch_gets_429_with_retry_after(self, tmp_path):
        tiny = TenantConfig(name="tiny", rate=1.0, burst=3.0, queue_limit=64)
        bg = _boot(
            tmp_path, workers=1, tenants=(tiny,), runner=_counting_runner
        )
        try:
            client = ServeClient(bg.base_url)
            specs = [_spec(seed=s) for s in range(6)]
            with pytest.raises(ServeError) as err:
                client.submit(specs, tenant="tiny")
            assert err.value.status == 429
            assert err.value.retry_after_s > 0
            # the rejection admitted nothing
            snap = client.metrics()
            assert snap["tenants"]["tiny"]["queue_depth"] == 0
            assert snap["rejected"] == 6
            # a within-burst batch still goes through afterwards
            resp = client.submit([_spec(seed=9)], tenant="tiny")
            client.wait(resp["jobs"][0]["digest"], poll_s=0.02)
        finally:
            bg.drain()

    def test_queue_overflow_gets_429(self, tmp_path):
        tiny = TenantConfig(name="tiny", rate=1000.0, burst=1000.0, queue_limit=2)
        bg = _boot(tmp_path, workers=1, tenants=(tiny,), runner=_slow_runner)
        try:
            client = ServeClient(bg.base_url)
            with pytest.raises(ServeError) as err:
                client.submit([_spec(seed=s) for s in range(8)], tenant="tiny")
            assert err.value.status == 429
        finally:
            bg.drain()

    def test_invalid_spec_rejected_with_400(self, tmp_path):
        bg = _boot(tmp_path, workers=1)
        try:
            client = ServeClient(bg.base_url)
            with pytest.raises(ServeError) as err:
                client.submit_wires([{"kind": "nope"}])
            assert err.value.status == 400
        finally:
            bg.drain()


class TestFairness:
    def test_three_tenant_overload_no_starvation(self, tmp_path):
        """The acceptance scenario: a flood cannot starve small tenants."""
        bg = _boot(tmp_path, workers=1, runner=_counting_runner, window_s=60.0)
        try:
            client = ServeClient(bg.base_url)
            flood = [_spec(seed=100 + s) for s in range(20)]
            alice = [_spec(seed=200 + s) for s in range(3)]
            bob = [_spec(seed=300 + s) for s in range(3)]
            client.submit(flood, tenant="flood")
            a_jobs = client.submit(alice, tenant="alice")["jobs"]
            b_jobs = client.submit(bob, tenant="bob")["jobs"]
            for j in a_jobs + b_jobs:
                client.wait(j["digest"], poll_s=0.02, timeout_s=60)
            snap = client.metrics()
            # the flood is still deep in queue when the small tenants
            # are fully served -- speed-aware dispatch interleaved them
            assert snap["tenants"]["flood"]["queue_depth"] > 0
            assert snap["tenants"]["alice"]["completed"] == 3
            assert snap["tenants"]["bob"]["completed"] == 3
            # drain the rest so shutdown has nothing in flight
            for j in client.jobs(tenant="flood"):
                client.wait(j["digest"], poll_s=0.02, timeout_s=60)
        finally:
            bg.drain()


class TestDrain:
    def test_drain_snapshots_and_resume_runs_each_job_once(self, tmp_path):
        specs = [_spec(seed=s) for s in range(8)]
        bg = _boot(tmp_path, workers=1, runner=_slow_runner)
        client = ServeClient(bg.base_url)
        digests = [j["digest"] for j in client.submit(specs)["jobs"]]
        bg.drain()  # SIGTERM path: finish in-flight, snapshot the rest

        snapshot_path = tmp_path / "serve-store" / SNAPSHOT_NAME
        ran_before = len(_RUN_LOG)
        assert 0 < ran_before < len(specs)  # drain beat the queue
        snapshot = json.loads(snapshot_path.read_text())
        snapshot_digests = {j["digest"] for j in snapshot["jobs"]}
        assert len(snapshot["jobs"]) == len(specs) - ran_before
        assert snapshot_digests <= set(digests)

        bg2 = _boot(tmp_path, workers=1, runner=_slow_runner)
        try:
            assert not snapshot_path.exists()  # consumed on resume
            client = ServeClient(bg2.base_url)
            # resubmit the full batch: pre-drain completions come back
            # as store hits, snapshot-resumed jobs dedup onto the queue
            client.submit(specs)
            views = [
                client.wait(d, poll_s=0.02, timeout_s=60) for d in digests
            ]
            assert {v["state"] for v in views} <= {"done", "cached"}
            assert all(self_store_has(bg2, d) for d in digests)
        finally:
            bg2.drain()
        # every job ran exactly once across both daemon lifetimes: the
        # pre-drain completions were never re-executed on resume
        assert len(_RUN_LOG) == len(specs)
        assert len(set(_RUN_LOG)) == len(specs)


class TestTimeouts:
    def test_hung_worker_killed_and_job_fails_with_timeout(self, tmp_path):
        config = ServeConfig(
            store_root=str(tmp_path / "serve-store"),
            port=0,
            workers=1,
            backend="process",
            runner=_hanging_runner,
            job_timeout_s=0.5,
            max_attempts=1,
            monitor_interval_s=0.05,
        )
        bg = BackgroundServer(config).start()
        try:
            client = ServeClient(bg.base_url)
            (job,) = client.submit([_spec(seed=6)])["jobs"]
            view = client.wait(job["digest"], poll_s=0.05, timeout_s=30)
            assert view["state"] == "failed"
            assert "timeout" in view["error"]
            assert client.metrics()["timeouts"] == 1
        finally:
            bg.drain()


def _hanging_runner(spec):
    time.sleep(600)
    return _fake_result(spec)  # pragma: no cover - killed before returning
