"""Tests for the deduplicating job service (repro.service)."""

import multiprocessing
import threading

import pytest

from repro.analysis.sanitizer import run_digest
from repro.apps.workloads import AppSpec
from repro.harness.parallel import RunSpec, run_spec
from repro.service import JobFailedError, JobService, JobStatus, run_specs_cached
from repro.store import ResultStore, spec_digest


def _spec(seed=0, balancer="speed"):
    app = AppSpec(bench="ep.C", n_threads=4, total_compute_us=40_000)
    return RunSpec.make(
        "tigerton", app, balancer=balancer, cores=2, seed=seed
    )


class TestSubmit:
    def test_miss_then_hit(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        specs = [_spec(seed=s) for s in range(3)]

        first = JobService(store)
        results = first.submit(specs)
        assert first.executed == 3
        assert [r.seed for r in results] == [0, 1, 2]

        second = JobService(store)
        cached = second.submit(specs)
        assert second.executed == 0
        assert [run_digest(r) for r in cached] == [run_digest(r) for r in results]
        states = {st.state for st in second.statuses().values()}
        assert states == {"cached"}

    def test_within_batch_dedup(self, tmp_path):
        service = JobService(ResultStore(tmp_path / "s"))
        spec = _spec()
        results = service.submit([spec, spec, spec])
        assert service.executed == 1
        assert len(results) == 3
        assert results[0] is results[1] is results[2]

    def test_cached_equals_fresh_digest(self, tmp_path):
        spec = _spec()
        fresh = run_spec(spec)
        service = JobService(ResultStore(tmp_path / "s"))
        (stored,) = service.submit([spec])
        (cached,) = JobService(service.store).submit([spec])
        assert run_digest(stored) == run_digest(fresh)
        assert run_digest(cached) == run_digest(fresh)

    def test_status_stream_order(self, tmp_path):
        seen = []
        service = JobService(
            ResultStore(tmp_path / "s"), on_status=lambda st: seen.append(st)
        )
        spec = _spec()
        service.submit([spec])
        assert [st.state for st in seen] == ["pending", "running", "done"]
        assert all(st.digest == spec_digest(spec) for st in seen)

    def test_fetch(self, tmp_path):
        service = JobService(ResultStore(tmp_path / "s"))
        spec = _spec()
        (result,) = service.submit([spec])
        digest = spec_digest(spec)
        assert service.fetch(digest) is result
        # a fresh service reads through to the store
        other = JobService(service.store)
        assert run_digest(other.fetch(digest)) == run_digest(result)
        with pytest.raises(KeyError):
            other.fetch("0" * 64)

    def test_trace_archival(self, tmp_path):
        service = JobService(ResultStore(tmp_path / "s"))
        spec = _spec()
        service.submit([spec], trace=True)
        digest = spec_digest(spec)
        entry = service.store.get(digest)
        assert entry.has_trace
        trace = service.store.load_trace(digest)
        assert trace.segments

    def test_trace_upgrades_traceless_cached_entry(self, tmp_path):
        from repro.analysis.sanitizer import run_digest

        store = ResultStore(tmp_path / "s")
        spec = _spec()
        (plain,) = JobService(store).submit([spec])
        digest = spec_digest(spec)
        assert not store.get(digest).has_trace

        service = JobService(store)
        (traced,) = service.submit([spec], trace=True)
        assert service.executed == 1  # re-run to archive the trace
        assert store.get(digest).has_trace
        assert run_digest(traced) == run_digest(plain)

        # once archived, a traced resubmit is a pure cache hit
        again = JobService(store)
        again.submit([spec], trace=True)
        assert again.executed == 0

    def test_corrupt_entry_recomputed_never_returned(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        spec = _spec()
        digest = JobService(store).submit([spec]) and spec_digest(spec)
        path = store._object_dir(digest) / "entry.json"
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))

        service = JobService(store)
        (result,) = service.submit([spec])
        assert service.executed == 1  # recomputed, not served corrupt
        assert run_digest(result) == run_digest(run_spec(spec))
        assert store.verify() == []


class TestRetries:
    def _flaky(self, monkeypatch, failures_by_digest):
        """Patch the service's executor to fail N times per digest."""
        import repro.service.jobs as jobs

        real = jobs.map_specs

        def flaky(specs, workers=1, return_exceptions=False, **kwargs):
            out = []
            for spec, result in zip(specs, real(specs, workers=workers,
                                               return_exceptions=True)):
                d = spec_digest(spec)
                if failures_by_digest.get(d, 0) > 0:
                    failures_by_digest[d] -= 1
                    out.append(RuntimeError("injected worker crash"))
                else:
                    out.append(result)
            return out

        monkeypatch.setattr(jobs, "map_specs", flaky)

    def test_crash_retried_with_backoff(self, tmp_path, monkeypatch):
        spec = _spec()
        self._flaky(monkeypatch, {spec_digest(spec): 2})
        naps = []
        service = JobService(
            ResultStore(tmp_path / "s"), max_attempts=3, backoff_s=0.01,
            sleep=naps.append,
        )
        (result,) = service.submit([spec])
        assert run_digest(result) == run_digest(run_spec(spec))
        assert service.status(spec_digest(spec)).attempts == 3
        # linear backoff between the three attempts
        assert naps == [pytest.approx(0.01), pytest.approx(0.02)]

    def test_exhausted_attempts_fail_loudly(self, tmp_path, monkeypatch):
        good, bad = _spec(seed=0), _spec(seed=1)
        self._flaky(monkeypatch, {spec_digest(bad): 99})
        service = JobService(
            ResultStore(tmp_path / "s"), max_attempts=2, sleep=lambda s: None,
        )
        with pytest.raises(JobFailedError, match="injected worker crash"):
            service.submit([good, bad])
        # the good spec still completed and was stored
        assert service.status(spec_digest(good)).state == "done"
        assert service.store.contains(good)
        st = service.status(spec_digest(bad))
        assert st.state == "failed"
        assert st.attempts == 2
        assert not service.store.contains(bad)

    def test_waiters_released_on_failure(self, tmp_path, monkeypatch):
        spec = _spec()
        self._flaky(monkeypatch, {spec_digest(spec): 99})
        service = JobService(
            ResultStore(tmp_path / "s"), max_attempts=1, sleep=lambda s: None,
        )
        with pytest.raises(JobFailedError):
            service.submit([spec])
        # nothing left in flight: a later submit starts from scratch
        assert service._inflight == {}


class TestTimeouts:
    def _slow_spec(self):
        # enough simulated compute that wall-clock time far exceeds the
        # budget below, so the deadline always fires
        app = AppSpec(bench="ep.C", n_threads=4, total_compute_us=30_000_000)
        return RunSpec.make("tigerton", app, balancer="speed", cores=2)

    def test_timed_out_job_fails_with_timeout_reason(self, tmp_path):
        spec = self._slow_spec()
        service = JobService(
            ResultStore(tmp_path / "s"), max_attempts=2, sleep=lambda s: None,
        )
        with pytest.raises(JobFailedError, match="timeout"):
            service.submit([spec], timeout_s=0.2)
        st = service.status(spec_digest(spec))
        assert st.state == "failed"
        assert st.attempts == 2  # the timeout fed the normal retry path
        assert "timeout" in st.error
        assert not service.store.contains(spec)

    def test_timeout_leaves_fast_jobs_untouched(self, tmp_path):
        fast = _spec()
        service = JobService(ResultStore(tmp_path / "s"))
        (result,) = service.submit([fast], timeout_s=120.0)
        assert run_digest(result) == run_digest(run_spec(fast))
        assert service.status(spec_digest(fast)).state == "done"

    def test_timeout_rejects_trace(self, tmp_path):
        service = JobService(ResultStore(tmp_path / "s"))
        with pytest.raises(ValueError, match="trace"):
            service.submit([_spec()], trace=True, timeout_s=1.0)


def _submit_in_child(root, queue):
    """Child-process worker for the cross-process dedup race test."""
    try:
        (result,) = run_specs_cached([_spec(seed=77)], root)
        queue.put(("ok", run_digest(result)))
    except Exception as exc:  # pragma: no cover - surfaced in parent
        queue.put(("error", repr(exc)))


class TestConcurrency:
    def test_cross_process_same_digest_single_entry(self, tmp_path):
        """Two processes race the same spec: one store entry, same bytes."""
        root = str(tmp_path / "s")
        queue = multiprocessing.Queue()
        procs = [
            multiprocessing.Process(
                target=_submit_in_child, args=(root, queue)
            )
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        outcomes = [queue.get(timeout=120) for _ in procs]
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        assert [kind for kind, _ in outcomes] == ["ok", "ok"], outcomes
        digests = {payload for _, payload in outcomes}
        assert len(digests) == 1  # byte-identical results in both processes

        store = ResultStore(root)
        spec = _spec(seed=77)
        assert store.contains(spec)
        assert store.verify() == []  # the racing writes corrupted nothing
        entry = store.get(spec_digest(spec))
        assert run_digest(entry.result) == digests.pop()

    def test_concurrent_submit_single_execution(self, tmp_path):
        service = JobService(ResultStore(tmp_path / "s"))
        spec = _spec()
        results = {}
        errors = []
        gate = threading.Barrier(2)

        def worker(name):
            try:
                gate.wait()
                results[name] = service.submit([spec])[0]
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # exactly one simulation ran; both submitters got the result
        assert service.executed == 1
        assert run_digest(results["a"]) == run_digest(results["b"])


class TestRunSpecsCached:
    def test_accepts_path_store_and_service(self, tmp_path):
        spec = _spec()
        root = str(tmp_path / "s")
        by_path = run_specs_cached([spec], root)
        by_store = run_specs_cached([spec], ResultStore(root))
        service = JobService(ResultStore(root))
        by_service = run_specs_cached([spec], service)
        digests = {run_digest(r[0]) for r in (by_path, by_store, by_service)}
        assert len(digests) == 1
        assert service.executed == 0  # everything after the first was cached


class TestJobStatus:
    def test_states_enumerated(self):
        from repro.service import JOB_STATES

        assert JOB_STATES == ("pending", "running", "cached", "done", "failed")
        st = JobStatus(digest="d" * 64, state="pending")
        assert st.attempts == 0 and st.error == ""
