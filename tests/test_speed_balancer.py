"""Unit tests for the speed balancer (the paper's contribution)."""

import pytest

from repro.apps.barriers import WaitPolicy
from repro.apps.spmd import SpmdApp
from repro.balance.linux import LinuxLoadBalancer
from repro.core.speed_balancer import SpeedBalancer, SpeedBalancerConfig
from repro.sched.task import WaitMode
from repro.system import System
from repro.topology import presets
from repro.topology.machine import DomainLevel


def build(
    machine=None,
    n_threads=4,
    cores=None,
    work_us=2_000_000,
    seed=0,
    config=None,
    mode=WaitMode.YIELD,
):
    system = System(machine or presets.uniform(4), seed=seed)
    system.set_balancer(LinuxLoadBalancer())
    app = SpmdApp(
        system,
        "app",
        n_threads,
        work_us=work_us,
        iterations=1,
        wait_policy=WaitPolicy(mode=mode),
        barrier_every_iteration=False,
    )
    sb = SpeedBalancer(app, cores=cores, config=config)
    system.add_user_balancer(sb)
    app.spawn(cores=cores)
    return system, app, sb


class TestInitialPinning:
    def test_round_robin_distribution(self):
        system, app, sb = build(n_threads=8, cores=[0, 1, 2, 3])
        system.run(until=20_000)
        placement = sorted(t.cur_core for t in app.tasks)
        assert placement == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_threads_pinned_after_startup(self):
        system, app, sb = build(n_threads=4)
        system.run(until=20_000)
        for t in app.tasks:
            assert t.allowed_cores is not None and len(t.allowed_cores) == 1

    def test_pinning_disabled_config(self):
        cfg = SpeedBalancerConfig(initial_pinning=False)
        system, app, sb = build(n_threads=4, config=cfg)
        system.run(until=20_000)
        assert any(t.allowed_cores is None for t in app.tasks)

    def test_respects_requested_core_subset(self):
        system, app, sb = build(n_threads=6, cores=[1, 2])
        system.run(until=20_000)
        assert {t.cur_core for t in app.tasks} <= {1, 2}


class TestPullBehaviour:
    def test_pulls_from_slow_to_fast(self):
        """3 threads, 2 cores: the canonical Section 3 scenario."""
        system, app, sb = build(
            machine=presets.uniform(2), n_threads=3, cores=[0, 1],
            work_us=3_000_000,
        )
        system.run_until_done([app])
        assert sb.stats_pulls >= 2
        # rotation equalizes progress: every thread within 25% of the max
        comps = sorted(t.compute_us for t in app.tasks)
        assert comps[0] >= 0.7 * comps[-1]

    def test_no_pulls_when_balanced(self):
        system, app, sb = build(n_threads=4, work_us=1_500_000)
        system.run_until_done([app])
        assert sb.stats_pulls == 0

    def test_post_migration_block_limits_rate(self):
        system, app, sb = build(
            machine=presets.uniform(2), n_threads=3, cores=[0, 1],
            work_us=2_000_000,
        )
        system.run_until_done([app])
        elapsed = app.elapsed_us
        intervals = elapsed / 100_000
        # with a two-interval block per core pair, pulls are bounded
        assert sb.stats_pulls <= intervals

    def test_wakeups_continue_until_app_done(self):
        system, app, sb = build(n_threads=4, work_us=500_000)
        system.run_until_done([app])
        assert sb.stats_wakeups >= 4  # one per core at least
        wakes_at_done = sb.stats_wakeups
        system.run(until=system.engine.now + 500_000)
        # balancer threads exit once the application is finished
        assert sb.stats_wakeups <= wakes_at_done + len(system.cores)


class TestThreshold:
    def test_high_threshold_pulls_eagerly(self):
        cfg_eager = SpeedBalancerConfig(speed_threshold=0.99, noise_sigma=0.0)
        system, app, sb = build(
            machine=presets.uniform(2), n_threads=3, cores=[0, 1],
            work_us=2_000_000, config=cfg_eager,
        )
        system.run_until_done([app])
        assert sb.stats_pulls >= 2

    def test_zero_threshold_never_pulls(self):
        cfg_never = SpeedBalancerConfig(speed_threshold=0.0)
        system, app, sb = build(
            machine=presets.uniform(2), n_threads=3, cores=[0, 1],
            work_us=1_000_000, config=cfg_never,
        )
        system.run_until_done([app])
        assert sb.stats_pulls == 0


class TestNumaBlocking:
    def test_numa_migrations_blocked_by_default(self):
        system, app, sb = build(
            machine=presets.barcelona(), n_threads=6, cores=[0, 1, 4, 5],
            work_us=2_000_000,
        )
        system.run_until_done([app])
        for rec in system.migration_log:
            if rec.reason == "speed.pull":
                level = system.machine.domain_level_between(rec.src, rec.dst)
                assert level != DomainLevel.NUMA

    def test_numa_migrations_allowed_when_enabled(self):
        enabled = dict.fromkeys(DomainLevel, True)
        cfg = SpeedBalancerConfig(level_enabled=enabled)
        system, app, sb = build(
            machine=presets.barcelona(), n_threads=6, cores=[0, 1, 4, 5],
            work_us=2_000_000, config=cfg,
        )
        system.run_until_done([app])
        numa_pulls = [
            rec
            for rec in system.migration_log
            if rec.reason == "speed.pull"
            and system.machine.domain_level_between(rec.src, rec.dst)
            == DomainLevel.NUMA
        ]
        assert numa_pulls  # imbalance sits across nodes: 2,2 vs 1,1


class TestVictimPolicies:
    def _migration_spread(self, policy, seed=0):
        cfg = SpeedBalancerConfig(victim_policy=policy)
        system, app, sb = build(
            machine=presets.uniform(2), n_threads=3, cores=[0, 1],
            work_us=4_000_000, config=cfg, seed=seed,
        )
        system.run_until_done([app])
        return sorted(t.migrations for t in app.tasks), sb

    def test_least_migrated_spreads_migrations(self):
        migs, sb = self._migration_spread("least-migrated")
        if sb.stats_pulls >= 3:
            # no single hot-potato thread absorbs everything
            assert migs[0] >= 1 or migs[-1] <= sb.stats_pulls - 2

    def test_most_migrated_creates_hot_potato(self):
        migs, sb = self._migration_spread("most-migrated")
        if sb.stats_pulls >= 3:
            assert migs[-1] >= sb.stats_pulls  # one thread takes all pulls

    def test_unknown_policy_raises(self):
        cfg = SpeedBalancerConfig(victim_policy="bogus")
        system, app, sb = build(
            machine=presets.uniform(2), n_threads=3, cores=[0, 1],
            work_us=1_000_000, config=cfg,
        )
        with pytest.raises(ValueError):
            system.run_until_done([app])


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        outcomes = []
        for _ in range(2):
            system, app, sb = build(
                machine=presets.uniform(2), n_threads=3, cores=[0, 1],
                work_us=1_000_000, seed=42,
            )
            system.run_until_done([app])
            outcomes.append((app.elapsed_us, sb.stats_pulls, app.migrations()))
        assert outcomes[0] == outcomes[1]

    def test_different_seeds_jitter_differs(self):
        a = build(machine=presets.uniform(2), n_threads=3, cores=[0, 1],
                  work_us=1_000_000, seed=1)
        b = build(machine=presets.uniform(2), n_threads=3, cores=[0, 1],
                  work_us=1_000_000, seed=2)
        a[0].run_until_done([a[1]])
        b[0].run_until_done([b[1]])
        # jitter shifts wake times, so migration timings differ
        pulls_a = [r.time for r in a[0].migration_log if r.reason == "speed.pull"]
        pulls_b = [r.time for r in b[0].migration_log if r.reason == "speed.pull"]
        assert pulls_a != pulls_b
