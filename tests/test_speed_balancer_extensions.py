"""Tests for the paper's proposed extensions (future work, Section 5/6).

* SMT speed weighting ("we intend to weight the speed of a task
  according to the state of the other hardware context");
* adaptive balance interval ("increasing heuristics to dynamically
  adjust the balancing interval");
* dynamic parallelism (footnote 6: the balancer keeps polling the task
  list, so threads created mid-run are picked up).
"""

import pytest

from repro.apps.barriers import WaitPolicy
from repro.apps.spmd import SpmdApp, SpmdThreadProgram
from repro.balance.linux import LinuxLoadBalancer
from repro.core.speed_balancer import SpeedBalancer, SpeedBalancerConfig
from repro.sched.task import Task, WaitMode
from repro.system import System
from repro.topology import presets


def build(machine, n_threads, cores=None, config=None, seed=0, work=1_000_000):
    system = System(machine, seed=seed)
    system.set_balancer(LinuxLoadBalancer())
    app = SpmdApp(
        system, "app", n_threads, work_us=work, iterations=1,
        wait_policy=WaitPolicy(mode=WaitMode.YIELD),
        barrier_every_iteration=False,
    )
    sb = SpeedBalancer(app, cores=cores, config=config)
    system.add_user_balancer(sb)
    return system, app, sb


class TestSmtWeighting:
    def test_busy_sibling_derates_published_speed(self):
        cfg = SpeedBalancerConfig(smt_weighting=True, noise_sigma=0.0)
        machine = presets.nehalem()
        system, app, sb = build(machine, n_threads=2, cores=[0, 1], config=cfg)
        app.spawn(cores=[0, 1])
        system.run(until=450_000)
        # contexts 0 and 1 are SMT siblings, both busy: published
        # speeds carry the derate
        assert sb.core_speed[0] == pytest.approx(machine.smt_derate, rel=0.1)

    def test_disabled_by_default(self):
        machine = presets.nehalem()
        cfg = SpeedBalancerConfig(noise_sigma=0.0)
        system, app, sb = build(machine, n_threads=2, cores=[0, 1], config=cfg)
        app.spawn(cores=[0, 1])
        system.run(until=450_000)
        assert sb.core_speed[0] == pytest.approx(1.0, rel=0.1)


class TestAdaptiveInterval:
    def test_balanced_app_backs_off(self):
        cfg = SpeedBalancerConfig(adaptive_interval=True, jitter=False)
        system, app, sb = build(presets.uniform(4), n_threads=4, config=cfg,
                                work=3_000_000)
        app.spawn()
        system.run_until_done([app])
        # 4 threads on 4 cores: never a pull; intervals grew to the cap
        assert max(sb._interval_factor.values()) == cfg.adaptive_max_factor
        # and fewer wake-ups happened than with the fixed interval
        fixed_cfg = SpeedBalancerConfig(adaptive_interval=False, jitter=False)
        system2, app2, sb2 = build(presets.uniform(4), n_threads=4,
                                   config=fixed_cfg, work=3_000_000)
        app2.spawn()
        system2.run_until_done([app2])
        assert sb.stats_wakeups < sb2.stats_wakeups

    def test_imbalanced_app_stays_fast(self):
        cfg = SpeedBalancerConfig(adaptive_interval=True)
        system, app, sb = build(presets.uniform(2), n_threads=3,
                                cores=[0, 1], config=cfg, work=2_000_000)
        app.spawn(cores=[0, 1])
        system.run_until_done([app])
        # rotation continues; performance must match the fixed interval
        assert sb.stats_pulls >= 2
        assert app.elapsed_us < 1.25 * (3 * 2_000_000 / 2)


class TestDynamicParallelism:
    def test_late_thread_is_balanced(self):
        """A thread created mid-run joins the balancer's rotation."""
        system, app, sb = build(presets.uniform(2), n_threads=2,
                                cores=[0, 1], work=2_000_000)
        app.spawn(cores=[0, 1])

        late = Task(
            program=SpmdThreadProgram(app, rank=0),
            name="app.late",
            app_id="app",
        )
        late.pin(frozenset({0, 1}))
        # skip the barrier bookkeeping: give the late thread plain work
        from repro.sched.task import Action, Program

        class PlainWork(Program):
            def __init__(self):
                self.done = False

            def next_action(self, task, now):
                if self.done:
                    return Action.exit()
                self.done = True
                return Action.compute(2_000_000)

        late.program = PlainWork()
        app.tasks.append(late)  # /proc polling would reveal the new tid
        system.spawn_burst([late], at=300_000)
        system.run_until_done([app])
        # the late thread was monitored and the trio rotated: every
        # thread's occupancy reflects a fair share rather than one
        # thread being stranded at half speed
        assert late.finished_at is not None
        assert sb.stats_pulls >= 1
