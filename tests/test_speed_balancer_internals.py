"""White-box tests for speed-balancer internals.

Covers the pieces the black-box tests exercise only indirectly: the
NUMA-aware pinning target computation, clock weighting, the per-level
block multipliers, and the monitored-thread attribution.
"""

import pytest

from repro.apps.barriers import WaitPolicy
from repro.apps.spmd import SpmdApp
from repro.balance.linux import LinuxLoadBalancer
from repro.core.speed_balancer import SpeedBalancer, SpeedBalancerConfig
from repro.sched.task import WaitMode
from repro.system import System
from repro.topology import presets
from repro.topology.machine import DomainLevel


def make(machine, n_threads=4, cores=None, config=None, seed=0, work=500_000):
    system = System(machine, seed=seed)
    system.set_balancer(LinuxLoadBalancer())
    app = SpmdApp(
        system, "app", n_threads, work_us=work, iterations=1,
        wait_policy=WaitPolicy(mode=WaitMode.YIELD),
        barrier_every_iteration=False,
    )
    sb = SpeedBalancer(app, cores=cores, config=config)
    system.add_user_balancer(sb)
    return system, app, sb


class TestPinningTargets:
    def test_uma_plain_round_robin(self):
        system, app, sb = make(presets.tigerton(), cores=[0, 1, 2, 3])
        assert sb._pinning_targets(6) == [0, 1, 2, 3, 0, 1]

    def test_numa_proportional_distribution(self):
        # 10 Barcelona cores span nodes of 4+4+2 cores; 16 threads must
        # land ~proportionally: no node at ratio 2.0 while another is at 1.5
        system, app, sb = make(presets.barcelona(), cores=list(range(10)))
        targets = sb._pinning_targets(16)
        per_node = {0: 0, 1: 0, 2: 0}
        for cid in targets:
            per_node[system.machine.numa_node_of(cid)] += 1
        assert per_node[2] == 3  # 2 cores get 3 threads (1.5/core)
        assert sorted((per_node[0], per_node[1])) == [6, 7]

    def test_numa_prefix_balance(self):
        """Any prefix of the target list stays node-balanced."""
        system, app, sb = make(presets.barcelona(), cores=list(range(8)))
        targets = sb._pinning_targets(8)
        for k in (2, 4, 6, 8):
            nodes = [system.machine.numa_node_of(c) for c in targets[:k]]
            assert abs(nodes.count(0) - nodes.count(1)) <= 1

    def test_numa_awareness_can_be_disabled(self):
        cfg = SpeedBalancerConfig(numa_aware_pinning=False)
        system, app, sb = make(presets.barcelona(), cores=list(range(8)),
                               config=cfg)
        assert sb._pinning_targets(4) == [0, 1, 2, 3]

    def test_no_core_overloaded_within_node(self):
        system, app, sb = make(presets.barcelona(), cores=list(range(12)))
        targets = sb._pinning_targets(16)
        from collections import Counter

        counts = Counter(targets)
        assert max(counts.values()) - min(counts.values()) <= 1


class TestClockWeighting:
    def test_published_speed_scaled_by_clock(self):
        machine = presets.asymmetric([2.0, 1.0])
        system, app, sb = make(machine, n_threads=2, work=2_000_000)
        system.run(until=450_000)
        # both threads run alone on their cores: raw share 1.0 each,
        # published speeds reflect the clocks
        assert sb.core_speed[0] == pytest.approx(2.0, rel=0.1)
        assert sb.core_speed[1] == pytest.approx(1.0, rel=0.1)

    def test_weighting_can_be_disabled(self):
        machine = presets.asymmetric([2.0, 1.0])
        cfg = SpeedBalancerConfig(weight_speed_by_clock=False, noise_sigma=0.0)
        system, app, sb = make(machine, n_threads=2, config=cfg, work=2_000_000)
        system.run(until=450_000)
        assert sb.core_speed[0] == pytest.approx(1.0, rel=0.05)
        assert sb.core_speed[1] == pytest.approx(1.0, rel=0.05)


class TestBlockMultipliers:
    def test_cache_level_multiplier_halves_block(self):
        lvl_mult = {
            DomainLevel.SMT: 0.5,
            DomainLevel.CACHE: 0.5,
            DomainLevel.SOCKET: 1.0,
            DomainLevel.MACHINE: 1.0,
            DomainLevel.NUMA: 1.0,
        }
        cfg = SpeedBalancerConfig(level_block_multiplier=lvl_mult)
        system, app, sb = make(presets.tigerton(), n_threads=3,
                               cores=[0, 1], config=cfg, work=2_000_000)
        app.spawn(cores=[0, 1])
        system.run_until_done([app])
        halved = sb.stats_pulls

        system2, app2, sb2 = make(presets.tigerton(), n_threads=3,
                                  cores=[0, 1], work=2_000_000)
        app2.spawn(cores=[0, 1])
        system2.run_until_done([app2])
        # cores 0,1 share the L2: halving their block roughly doubles
        # the feasible migration rate
        assert halved >= sb2.stats_pulls


class TestMonitoredThreads:
    def test_only_app_threads_counted(self):
        system, app, sb = make(presets.uniform(2), n_threads=2)
        from repro.apps.multiprogram import CpuHog

        hog = CpuHog(system, core=0)
        hog.spawn()
        app.spawn()
        system.run(until=5_000)
        on0 = sb._monitored_on(0)
        assert hog.task not in on0
        assert all(t.app_id == "app" for t in on0)

    def test_finished_threads_dropped(self):
        system, app, sb = make(presets.uniform(4), n_threads=4, work=10_000)
        app.spawn()
        system.run_until_done([app])
        for cid in range(4):
            assert sb._monitored_on(cid) == []


class TestLifecycle:
    def test_balancer_stops_after_app_exits(self):
        system, app, sb = make(presets.uniform(4), n_threads=4, work=50_000)
        app.spawn()
        system.run_until_done([app])
        done_at = system.engine.now
        system.run(until=done_at + 2_000_000)
        # balancer wake events stop re-arming once the app is gone
        assert system.engine.pending == 0 or sb.stats_wakeups <= 4 * 25

    def test_repr(self):
        system, app, sb = make(presets.uniform(2), n_threads=2)
        assert "app" in repr(sb)
