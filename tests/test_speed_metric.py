"""Unit tests for the speed metric and taskstats-style estimator."""

import pytest

from repro.balance.base import NoBalancer
from repro.core.speed import SpeedEstimator
from repro.sched.task import Task, TaskState
from repro.system import System
from repro.topology import presets

from tests.test_core_sim import OneShot, pinned_task


def make_system(n=2, seed=0):
    system = System(presets.uniform(n), seed=seed)
    system.set_balancer(NoBalancer())
    return system


class TestSampling:
    def test_first_sample_is_none(self):
        system = make_system()
        est = SpeedEstimator(system)
        t = Task()
        assert est.sample(t) is None

    def test_full_speed_task(self):
        system = make_system()
        est = SpeedEstimator(system)
        t = pinned_task(OneShot(500_000), 0)
        system.spawn_burst([t])
        system.run(until=10_000)
        est.sample(t)
        system.run(until=110_000)
        s = est.sample(t)
        assert s is not None
        assert s.speed == pytest.approx(1.0, abs=0.01)

    def test_shared_core_half_speed(self):
        system = make_system()
        est = SpeedEstimator(system)
        a = pinned_task(OneShot(500_000), 0, name="a")
        b = pinned_task(OneShot(500_000), 0, name="b")
        system.spawn_burst([a, b])
        system.run(until=10_000)
        est.sample(a)
        system.run(until=210_000)
        s = est.sample(a)
        assert s.speed == pytest.approx(0.5, abs=0.06)

    def test_sleeping_task_speed_zero(self):
        system = make_system()
        est = SpeedEstimator(system)
        t = Task()
        t.state = TaskState.SLEEPING
        est.sample(t)
        system.engine.schedule(100_000, lambda: None)
        system.engine.run()
        s = est.sample(t)
        assert s.speed == 0.0

    def test_consecutive_samples_disjoint_intervals(self):
        system = make_system()
        est = SpeedEstimator(system)
        t = pinned_task(OneShot(1_000_000), 0)
        system.spawn_burst([t])
        system.run(until=100_000)
        est.sample(t)
        system.run(until=200_000)
        s1 = est.sample(t)
        system.run(until=300_000)
        s2 = est.sample(t)
        assert s1.at == 200_000 and s2.at == 300_000
        assert s2.exec_us - s1.exec_us == pytest.approx(100_000, abs=10)

    def test_zero_elapsed_returns_none(self):
        system = make_system()
        est = SpeedEstimator(system)
        t = Task()
        est.sample(t)
        assert est.sample(t) is None  # same instant

    def test_forget_resets_snapshot(self):
        system = make_system()
        est = SpeedEstimator(system)
        t = Task()
        est.sample(t)
        est.forget(t)
        system.engine.schedule(1000, lambda: None)
        system.engine.run()
        assert est.sample(t) is None  # first sample again


class TestNoise:
    def test_noise_perturbs_speed(self):
        system = make_system()
        noisy = SpeedEstimator(system, noise_sigma=0.1)
        t = pinned_task(OneShot(1_000_000), 0)
        system.spawn_burst([t])
        system.run(until=100_000)
        noisy.sample(t)
        speeds = []
        for stop in range(200_000, 700_000, 100_000):
            system.run(until=stop)
            speeds.append(noisy.sample(t).speed)
        assert len({round(s, 6) for s in speeds}) > 1

    def test_noise_clamped_to_sane_range(self):
        system = make_system()
        est = SpeedEstimator(system, noise_sigma=5.0)  # absurd noise
        t = pinned_task(OneShot(1_000_000), 0)
        system.spawn_burst([t])
        system.run(until=100_000)
        est.sample(t)
        for stop in range(200_000, 900_000, 100_000):
            system.run(until=stop)
            s = est.sample(t)
            assert 0.0 <= s.speed <= 1.5

    def test_zero_sigma_is_exact(self):
        system = make_system()
        est = SpeedEstimator(system, noise_sigma=0.0)
        t = pinned_task(OneShot(500_000), 0)
        system.spawn_burst([t])
        system.run(until=100_000)
        est.sample(t)
        system.run(until=200_000)
        assert est.sample(t).speed == pytest.approx(1.0, abs=1e-6)
