"""Unit tests for the SPMD application model."""

import pytest

from repro.apps.barriers import WaitPolicy
from repro.apps.spmd import SpmdApp
from repro.balance.pinned import PinnedBalancer
from repro.sched.task import WaitMode
from repro.system import System
from repro.topology import presets

from tests.conftest import make_spmd


def pinned_system(n=4, seed=0):
    system = System(presets.uniform(n), seed=seed)
    system.set_balancer(PinnedBalancer())
    return system


class TestConstruction:
    def test_creates_named_tasks(self, uniform4):
        app = make_spmd(uniform4, n_threads=3, name="x")
        assert [t.name for t in app.tasks] == ["x.t0", "x.t1", "x.t2"]
        assert all(t.app_id == "x" for t in app.tasks)

    def test_validation(self, uniform4):
        with pytest.raises(ValueError):
            make_spmd(uniform4, n_threads=0)
        with pytest.raises(ValueError):
            make_spmd(uniform4, iterations=0)

    def test_work_for_scalar(self, uniform4):
        app = make_spmd(uniform4, work_us=500)
        assert app.work_for(0, 0) == 500

    def test_work_for_sequence(self, uniform4):
        app = SpmdApp(uniform4, "a", 2, work_us=[100, 200], iterations=1)
        assert app.work_for(0, 0) == 100
        assert app.work_for(1, 0) == 200

    def test_work_for_callable(self, uniform4):
        app = SpmdApp(uniform4, "a", 2, work_us=lambda r, i: 10 * (r + i + 1))
        assert app.work_for(1, 2) == 40

    def test_total_work(self, uniform4):
        app = make_spmd(uniform4, n_threads=4, work_us=100, iterations=3)
        assert app.total_work_us() == 4 * 100 * 3

    def test_double_spawn_rejected(self, uniform4):
        app = make_spmd(uniform4)
        app.spawn()
        with pytest.raises(RuntimeError):
            app.spawn()

    def test_unfinished_accessors_raise(self, uniform4):
        app = make_spmd(uniform4)
        assert not app.done
        with pytest.raises(RuntimeError):
            _ = app.finish_time


class TestExecution:
    def test_one_thread_per_core_runs_ideal(self):
        system = pinned_system(4)
        app = make_spmd(system, n_threads=4, work_us=10_000, iterations=2,
                        mode=WaitMode.SLEEP)
        app.spawn()
        system.run_until_done([app])
        # 2 iterations x 10ms, barriers nearly free when balanced
        assert app.elapsed_us == pytest.approx(20_000, rel=0.05)
        assert app.done

    def test_thread_count_beyond_cores(self):
        system = pinned_system(2)
        app = make_spmd(system, n_threads=4, work_us=10_000, iterations=2,
                        mode=WaitMode.SLEEP)
        app.spawn()
        system.run_until_done([app])
        # 2 threads per core: every phase takes 2x
        assert app.elapsed_us == pytest.approx(40_000, rel=0.06)

    def test_core_subset_restricts_threads(self):
        system = pinned_system(4)
        app = make_spmd(system, n_threads=4, work_us=5_000, iterations=1)
        app.spawn(cores=[0, 1])
        system.run_until_done([app])
        assert all((t.last_core or 0) in (0, 1) for t in app.tasks)
        assert app.elapsed_us >= 10_000

    def test_imbalanced_work_gated_by_slowest(self):
        system = pinned_system(4)
        app = SpmdApp(
            system, "imb", 4, work_us=[1_000, 1_000, 1_000, 40_000],
            iterations=1, wait_policy=WaitPolicy(mode=WaitMode.SLEEP),
        )
        app.spawn()
        system.run_until_done([app])
        assert app.elapsed_us == pytest.approx(40_000, rel=0.05)

    def test_per_iteration_barriers_synchronize(self):
        """With barriers every iteration, a fast thread cannot run ahead."""
        system = pinned_system(2)
        app = SpmdApp(
            system, "sync", 2, work_us=[1_000, 10_000], iterations=5,
            wait_policy=WaitPolicy(mode=WaitMode.SLEEP),
        )
        app.spawn()
        system.run_until_done([app])
        assert app.elapsed_us == pytest.approx(50_000, rel=0.05)

    def test_ep_mode_skips_intermediate_barriers(self):
        """barrier_every_iteration=False lets threads run ahead freely."""
        system = pinned_system(2)
        app = SpmdApp(
            system, "ep", 2, work_us=[1_000, 10_000], iterations=5,
            wait_policy=WaitPolicy(mode=WaitMode.SLEEP),
            barrier_every_iteration=False,
        )
        app.spawn()
        system.run_until_done([app])
        fast = app.tasks[0]
        # the fast thread's compute finished long before the barrier
        assert fast.compute_us == pytest.approx(5_000, abs=100)
        assert app.elapsed_us == pytest.approx(50_000, rel=0.05)

    def test_migrations_counter(self, uniform4):
        app = make_spmd(uniform4)
        assert app.migrations() == 0

    def test_elapsed_and_times(self):
        system = pinned_system(2)
        app = make_spmd(system, n_threads=2, work_us=2_000, iterations=1,
                        mode=WaitMode.SLEEP)
        app.spawn(at=1_000)
        system.run_until_done([app])
        assert app.start_time == 1_000
        assert app.finish_time > app.start_time
        assert app.elapsed_us == app.finish_time - app.start_time


class TestProgramIterationTracking:
    def test_iteration_property_progresses(self):
        system = pinned_system(1)
        app = make_spmd(system, n_threads=1, work_us=1_000, iterations=3,
                        mode=WaitMode.SLEEP)
        app.spawn()
        system.run_until_done([app])
        assert app.tasks[0].program.iteration == 3
