"""Tests for the content-addressed experiment store (repro.store)."""

import gzip
import json

import pytest

from repro.analysis.sanitizer import run_digest
from repro.apps.workloads import AppSpec
from repro.core.speed_balancer import SpeedBalancerConfig
from repro.harness.parallel import RunSpec, run_spec
from repro.store import (
    ResultStore,
    StoreError,
    StoreIntegrityError,
    UnstorableSpecError,
    canonical_json,
    canonical_value,
    digest_of,
    function_ref,
    spec_digest,
    spec_key,
    sweep_cell_key,
)


def _spec(seed=0, balancer="speed", **params):
    app = AppSpec(bench="ep.C", n_threads=4, total_compute_us=40_000)
    return RunSpec.make(
        "tigerton", app, balancer=balancer, cores=2, seed=seed, **params
    )


def _traced(spec):
    """Run a spec in-process with tracing; (result, trace)."""
    from repro.harness.experiment import run_app
    from repro.harness.parallel import resolve_machine

    result, system = run_app(
        resolve_machine(spec.machine), spec.app, balancer=spec.balancer,
        cores=list(range(spec.cores)), seed=spec.seed, trace=True,
        return_system=True,
    )
    return result, system.trace


def _module_runner(a, b):
    """Module-level sweep runner (addressable by function_ref)."""
    return a * b


class TestCanonicalKeys:
    def test_digest_is_hex_sha256(self):
        d = spec_digest(_spec())
        assert len(d) == 64
        assert all(c in "0123456789abcdef" for c in d)

    def test_digest_stable_across_calls(self):
        assert spec_digest(_spec()) == spec_digest(_spec())

    def test_digest_sensitive_to_every_field(self):
        base = spec_digest(_spec())
        assert spec_digest(_spec(seed=1)) != base
        assert spec_digest(_spec(balancer="load")) != base
        other_app = RunSpec.make(
            "tigerton",
            AppSpec(bench="cg.B", n_threads=4, total_compute_us=40_000),
            balancer="speed", cores=2, seed=0,
        )
        assert spec_digest(other_app) != base

    def test_params_order_canonical(self):
        from repro.sched.cfs import CfsParams

        a = _spec(speed_config=SpeedBalancerConfig(), cfs_params=CfsParams())
        b = _spec(cfs_params=CfsParams(), speed_config=SpeedBalancerConfig())
        assert spec_digest(a) == spec_digest(b)

    def test_dataclass_canonical_form(self):
        value = canonical_value(AppSpec(bench="ep.C", n_threads=2))
        assert value["__dataclass__"].endswith(":AppSpec")
        assert value["fields"]["bench"] == "ep.C"

    def test_enum_keyed_dict_canonicalizes(self):
        # SpeedBalancerConfig.level_enabled is keyed by DomainLevel (an
        # IntEnum, so members canonicalize as their stable int values);
        # the non-string keys force the sorted __dict__ pair-list form
        value = canonical_value(SpeedBalancerConfig())
        text = canonical_json(value)
        assert '"__dict__"' in text
        pairs = value["fields"]["level_enabled"]["__dict__"]
        assert pairs == sorted(pairs)
        assert digest_of(value) == digest_of(canonical_value(SpeedBalancerConfig()))

    def test_plain_enum_member_canonicalizes_by_name(self):
        import enum

        class Mode(enum.Enum):
            A = "a"
            B = "b"

        # local enums cannot be resolved back -- rejected, not mis-keyed
        with pytest.raises(UnstorableSpecError):
            canonical_value(Mode.A)
        from repro.sched.task import WaitMode

        value = canonical_value(WaitMode.YIELD)
        assert value == {"__enum__": "repro.sched.task:WaitMode.YIELD"}

    def test_lambda_app_rejected_before_any_run(self):
        spec = RunSpec.make(
            "tigerton", lambda system: None, balancer="speed", cores=2, seed=0,
        )
        with pytest.raises(UnstorableSpecError):
            spec_key(spec)

    def test_function_ref_roundtrip_and_rejection(self):
        ref = function_ref(_module_runner)
        assert ref.endswith(":_module_runner")
        with pytest.raises(UnstorableSpecError):
            function_ref(lambda: None)

        def local():
            pass

        with pytest.raises(UnstorableSpecError):
            function_ref(local)

    def test_sweep_cell_key_identifies_runner_and_assignment(self):
        k1 = sweep_cell_key(_module_runner, {"a": 1, "b": 2})
        k2 = sweep_cell_key(_module_runner, {"b": 2, "a": 1})
        assert digest_of(k1) == digest_of(k2)
        assert digest_of(k1) != digest_of(
            sweep_cell_key(_module_runner, {"a": 1, "b": 3})
        )


class TestStoreRoundTrip:
    def test_put_get_parity(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        spec = _spec()
        fresh = run_spec(spec)
        digest = store.put(spec, fresh)
        assert digest == spec_digest(spec)
        assert store.contains(spec)
        entry = store.get(digest)
        assert entry is not None
        assert entry.kind == "run"
        # the read-back result is byte-identical to the fresh one
        assert run_digest(entry.result) == run_digest(fresh)

    def test_get_absent_returns_none(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        assert store.get("0" * 64) is None
        assert not store.contains(_spec())

    def test_duplicate_put_is_noop(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        spec = _spec()
        result = run_spec(spec)
        store.put(spec, result)
        store.put(spec, result)
        assert len(store.entries()) == 1
        assert store.stats().next_seq == 1

    def test_trace_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        spec = _spec()
        result, trace = _traced(spec)
        digest = store.put(spec, result, trace=trace)
        entry = store.get(digest)
        assert entry.has_trace
        loaded = store.load_trace(digest)
        assert loaded.segments == trace.segments
        assert loaded.migrations == trace.migrations
        assert loaded.limit == trace.limit

    def test_value_kind_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        key = sweep_cell_key(_module_runner, {"a": 3, "b": 4})
        digest = store.put(key, 12)
        entry = store.get(digest)
        assert entry.kind == "value"
        assert entry.payload == 12

    def test_delete(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        spec = _spec()
        digest = store.put(spec, run_spec(spec))
        assert store.delete(digest)
        assert store.get(digest) is None
        assert not store.delete(digest)


class TestCorruptionDetection:
    def _corrupt(self, store, digest, filename="entry.json"):
        path = store._object_dir(digest) / filename
        data = bytearray(path.read_bytes())
        # flip one byte in the middle of the payload
        i = len(data) // 2
        data[i] ^= 0xFF
        path.write_bytes(bytes(data))

    def test_flipped_entry_byte_detected(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        spec = _spec()
        digest = store.put(spec, run_spec(spec))
        self._corrupt(store, digest)
        with pytest.raises(StoreIntegrityError):
            store.get(digest)

    def test_flipped_trace_byte_detected(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        spec = _spec()
        result, trace = _traced(spec)
        digest = store.put(spec, result, trace=trace)
        raw = bytearray(gzip.decompress(
            (store._object_dir(digest) / "trace.json.gz").read_bytes()
        ))
        raw[len(raw) // 2] ^= 0xFF
        (store._object_dir(digest) / "trace.json.gz").write_bytes(
            gzip.compress(bytes(raw), mtime=0)
        )
        with pytest.raises(StoreIntegrityError):
            store.load_trace(digest)

    def test_wrong_directory_detected(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        spec = _spec()
        digest = store.put(spec, run_spec(spec))
        # file the valid entry under a different digest
        other = "f" * 64
        src = store._object_dir(digest)
        dst = store._object_dir(other)
        dst.parent.mkdir(parents=True, exist_ok=True)
        src.rename(dst)
        with pytest.raises(StoreIntegrityError, match="filed under"):
            store.get(other)

    def test_verify_reports_corruption(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        spec = _spec()
        digest = store.put(spec, run_spec(spec))
        assert store.verify() == []
        self._corrupt(store, digest)
        findings = store.verify()
        assert findings and "corrupt" in findings[0]

    def test_gc_removes_corruption(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        a, b = _spec(seed=0), _spec(seed=1)
        da = store.put(a, run_spec(a))
        store.put(b, run_spec(b))
        self._corrupt(store, da)
        report = store.gc()
        assert report.removed_corrupt == 1
        assert report.kept == 1
        assert store.verify() == []


class TestMaintenance:
    def test_stats(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        spec = _spec()
        result, trace = _traced(spec)
        store.put(spec, result, trace=trace)
        other = _spec(seed=1)
        store.put(other, run_spec(other))
        stats = store.stats()
        assert stats.entries == 2
        assert stats.traced == 1
        assert stats.total_bytes > 0

    def test_gc_evicts_oldest_first(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        digests = []
        for seed in range(3):
            spec = _spec(seed=seed)
            digests.append(store.put(spec, run_spec(spec)))
        report = store.gc(max_entries=2)
        assert report.removed_evicted == 1
        assert store.get(digests[0]) is None  # oldest went
        assert store.get(digests[1]) is not None
        assert store.get(digests[2]) is not None

    def test_index_is_rebuildable(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        spec = _spec()
        digest = store.put(spec, run_spec(spec))
        (store.root / "index.json").unlink()
        # reads fall back to disk; gc adopts the orphan back into the index
        assert store.get(digest) is not None
        report = store.gc()
        assert report.adopted == 1
        assert [e["digest"] for e in store.entries()] == [digest]

    def test_torn_index_rebuilds_transparently(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        spec = _spec()
        digest = store.put(spec, run_spec(spec))
        (store.root / "index.json").write_text("{ not json")
        # a torn index is only an accelerator: reads rebuild it in memory
        assert [e["digest"] for e in store.entries()] == [digest]
        assert store.verify() == []

    def test_future_index_schema_refused(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        spec = _spec()
        store.put(spec, run_spec(spec))
        (store.root / "index.json").write_text(json.dumps({"schema": 999}))
        with pytest.raises(StoreError, match="schema"):
            store.entries()
