"""Stress tests: larger machines, multiple apps, invariant checks.

The paper argues its distributed algorithm scales with core count
(Figure 1 discussion); these tests run configurations beyond the
16-core evaluation machines and check that nothing structural breaks:
accounting stays exact, apps stay isolated, and speed balancing keeps
its advantage.
"""

import pytest

from repro.apps.barriers import WaitPolicy
from repro.apps.multiprogram import CpuHog
from repro.apps.workloads import ep_app
from repro.balance.linux import LinuxLoadBalancer
from repro.core.speed_balancer import SpeedBalancer
from repro.harness.experiment import run_app
from repro.sched.task import WaitMode
from repro.system import System
from repro.topology import presets

YIELD = WaitPolicy(mode=WaitMode.YIELD)


@pytest.mark.slow
class TestLargeMachines:
    def test_64_core_oversubscription(self):
        """96 threads on 64 cores: the 16-on-12 story at 4x scale."""
        machine = presets.uniform(64, cores_per_socket=8)

        def factory(system):
            return ep_app(system, n_threads=96, wait_policy=YIELD,
                          total_compute_us=800_000)

        speed = run_app(machine, factory, "speed", seed=0)
        load = run_app(
            presets.uniform(64, cores_per_socket=8), factory, "load", seed=0
        )
        # capacity ideal: 96*0.8s/64 = 1.2s; LOAD stuck at ~1.6s
        assert speed.elapsed_us < 0.92 * load.elapsed_us
        assert speed.speedup > 50

    def test_accounting_exact_at_scale(self):
        machine = presets.uniform(32, cores_per_socket=8)

        def factory(system):
            return ep_app(system, n_threads=48, wait_policy=YIELD,
                          total_compute_us=300_000)

        res, system = run_app(machine, factory, "speed", seed=1,
                              return_system=True)
        total_busy = sum(c.stats.busy_us for c in system.cores)
        total_exec = sum(t.exec_us for t in system.tasks)
        assert total_busy == total_exec


@pytest.mark.slow
class TestMultipleApps:
    def test_two_speed_balanced_apps_coexist(self):
        """Two apps, each with its own speedbalancer on its own core
        subset -- the paper's 'apply speed balancing to a particular
        parallel application' usage."""
        system = System(presets.tigerton(), seed=2)
        system.set_balancer(LinuxLoadBalancer())
        app_a = ep_app(system, n_threads=12, wait_policy=YIELD,
                       total_compute_us=800_000)
        app_a.name = "ep.C"  # default
        app_b = ep_app(system, n_threads=10, wait_policy=YIELD,
                       total_compute_us=800_000)
        # distinct app ids so the balancers don't cross-manage
        for t in app_b.tasks:
            t.app_id = "ep.B"
        app_b.name = "ep.B"
        sb_a = SpeedBalancer(app_a, cores=list(range(0, 8)))
        sb_b = SpeedBalancer(app_b, cores=list(range(8, 16)))
        system.add_user_balancer(sb_a)
        system.add_user_balancer(sb_b)
        app_a.spawn(cores=list(range(0, 8)))
        app_b.spawn(cores=list(range(8, 16)))
        system.run_until_done([app_a, app_b])
        # isolation: every thread stayed inside its subset
        for t in app_a.tasks:
            assert t.last_core in range(0, 8)
        for t in app_b.tasks:
            assert t.last_core in range(8, 16)
        # both rotated toward their capacity shares (12 on 8, 10 on 8)
        assert app_a.elapsed_us < 1.35 * (12 * 800_000 / 8)
        assert app_b.elapsed_us < 1.35 * (10 * 800_000 / 8)

    def test_app_with_many_hogs(self):
        """EP against 4 pinned hogs: capacity 12 of 16 cores."""

        def factory(system):
            return ep_app(system, n_threads=16, wait_policy=YIELD,
                          total_compute_us=600_000)

        res = run_app(
            presets.tigerton, factory, "speed", cores=16, seed=3,
            corunner_factories=[
                (lambda c: (lambda s: CpuHog(s, core=c)))(c) for c in range(4)
            ],
        )
        # fair split: 16 threads share 16 - 4*0.5 = 14 effective cores
        assert res.speedup > 10.0
