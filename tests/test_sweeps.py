"""Tests for the generic sweep helper and extended catalog."""

import pytest

from repro.apps.workloads import FULL_CATALOG, NAS_EXTENDED_CATALOG, make_nas_app
from repro.harness.sweeps import sweep


class TestSweep:
    def test_cartesian_coverage(self):
        result = sweep(
            {"a": [1, 2], "b": [10, 20, 30]},
            lambda a, b: a * b,
        )
        assert len(result) == 6
        assert result.get(a=2, b=30) == 60

    def test_series_extraction_sorted(self):
        result = sweep(
            {"x": [3, 1, 2], "mode": ["m", "n"]},
            lambda x, mode: x * (1 if mode == "m" else 100),
        )
        xs, ys = result.series("x", mode="n")
        assert xs == [1, 2, 3]
        assert ys == [100, 200, 300]

    def test_series_requires_full_fixing(self):
        result = sweep({"x": [1], "y": [1, 2]}, lambda x, y: x + y)
        with pytest.raises(ValueError, match="needs values"):
            result.series("x")
        with pytest.raises(KeyError):
            result.series("z", y=1)

    def test_progress_callback(self):
        seen = []
        sweep({"a": [1, 2]}, lambda a: a, progress=lambda p, o: seen.append((p, o)))
        assert seen == [({"a": 1}, 1), ({"a": 2}, 2)]

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            sweep({}, lambda: None)

    def test_end_to_end_with_harness(self):
        from repro.apps.workloads import ep_app
        from repro.harness.experiment import run_app
        from repro.topology import presets

        result = sweep(
            {"cores": [2, 4], "balancer": ["pinned", "speed"]},
            lambda cores, balancer: run_app(
                presets.uniform(4),
                lambda s: ep_app(s, n_threads=4, total_compute_us=40_000),
                balancer=balancer,
                cores=cores,
            ).speedup,
        )
        xs, ys = result.series("cores", balancer="pinned")
        assert xs == [2, 4]
        assert ys[1] > ys[0]


class TestExtendedCatalog:
    def test_union_view(self):
        assert set(FULL_CATALOG) >= set(NAS_EXTENDED_CATALOG)
        assert "mg.B" in FULL_CATALOG and "lu.A" in FULL_CATALOG

    def test_extended_entries_runnable(self, tigerton_system):
        app = make_nas_app(tigerton_system, "lu.A", n_threads=4,
                           total_compute_us=20_000)
        app.spawn(cores=[0, 1, 2, 3])
        tigerton_system.run_until_done([app])
        assert app.done

    def test_extended_marked_distinct_from_paper_table(self):
        from repro.apps.workloads import NAS_CATALOG

        assert not (set(NAS_CATALOG) & set(NAS_EXTENDED_CATALOG))
