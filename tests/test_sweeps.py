"""Tests for the generic sweep helper and extended catalog."""

import pytest

from repro.apps.workloads import FULL_CATALOG, NAS_EXTENDED_CATALOG, make_nas_app
from repro.harness.sweeps import sweep


class TestSweep:
    def test_cartesian_coverage(self):
        result = sweep(
            {"a": [1, 2], "b": [10, 20, 30]},
            lambda a, b: a * b,
        )
        assert len(result) == 6
        assert result.get(a=2, b=30) == 60

    def test_series_extraction_sorted(self):
        result = sweep(
            {"x": [3, 1, 2], "mode": ["m", "n"]},
            lambda x, mode: x * (1 if mode == "m" else 100),
        )
        xs, ys = result.series("x", mode="n")
        assert xs == [1, 2, 3]
        assert ys == [100, 200, 300]

    def test_series_requires_full_fixing(self):
        result = sweep({"x": [1], "y": [1, 2]}, lambda x, y: x + y)
        with pytest.raises(ValueError, match="needs values"):
            result.series("x")
        with pytest.raises(KeyError):
            result.series("z", y=1)

    def test_series_rejects_unknown_fixed_params(self):
        result = sweep({"x": [1, 2], "y": [1]}, lambda x, y: x + y)
        # a typo'd fixed name would silently select nothing/everything
        with pytest.raises(KeyError, match=r"unknown fixed parameter.*'mode'"):
            result.series("x", y=1, mode="speed")

    def test_series_rejects_fixing_the_x_axis(self):
        result = sweep({"x": [1, 2], "y": [1]}, lambda x, y: x + y)
        with pytest.raises(ValueError, match="cannot fix"):
            result.series("x", x=1, y=1)

    def test_progress_callback(self):
        seen = []
        sweep({"a": [1, 2]}, lambda a: a, progress=lambda p, o: seen.append((p, o)))
        assert seen == [({"a": 1}, 1), ({"a": 2}, 2)]

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            sweep({}, lambda: None)

    def test_end_to_end_with_harness(self):
        from repro.apps.workloads import ep_app
        from repro.harness.experiment import run_app
        from repro.topology import presets

        result = sweep(
            {"cores": [2, 4], "balancer": ["pinned", "speed"]},
            lambda cores, balancer: run_app(
                presets.uniform(4),
                lambda s: ep_app(s, n_threads=4, total_compute_us=40_000),
                balancer=balancer,
                cores=cores,
            ).speedup,
        )
        xs, ys = result.series("cores", balancer="pinned")
        assert xs == [2, 4]
        assert ys[1] > ys[0]


#: module-level counting runner so incremental sweeps can key it
_CELL_CALLS = {"n": 0}


def _counting_cell(a, b):
    _CELL_CALLS["n"] += 1
    return a * b


class TestIncrementalSweep:
    def test_second_run_executes_zero_cells(self, tmp_path):
        root = str(tmp_path / "store")
        _CELL_CALLS["n"] = 0
        first = sweep({"a": [1, 2], "b": [10, 20]}, _counting_cell, store=root)
        assert _CELL_CALLS["n"] == 4
        again = sweep({"a": [1, 2], "b": [10, 20]}, _counting_cell, store=root)
        assert _CELL_CALLS["n"] == 4  # zero new executions
        assert again.points == first.points

    def test_growing_the_grid_pays_only_for_new_cells(self, tmp_path):
        root = str(tmp_path / "store")
        _CELL_CALLS["n"] = 0
        sweep({"a": [1, 2], "b": [10]}, _counting_cell, store=root)
        assert _CELL_CALLS["n"] == 2
        grown = sweep({"a": [1, 2, 3], "b": [10]}, _counting_cell, store=root)
        assert _CELL_CALLS["n"] == 3  # only a=3 ran
        assert grown.get(a=3, b=10) == 30

    def test_corrupt_cell_recomputed(self, tmp_path):
        from repro.store import ResultStore, digest_of, sweep_cell_key

        root = str(tmp_path / "store")
        _CELL_CALLS["n"] = 0
        sweep({"a": [5], "b": [7]}, _counting_cell, store=root)
        store = ResultStore(root)
        digest = digest_of(sweep_cell_key(_counting_cell, {"a": 5, "b": 7}))
        path = store._object_dir(digest) / "entry.json"
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        result = sweep({"a": [5], "b": [7]}, _counting_cell, store=root)
        assert _CELL_CALLS["n"] == 2  # recomputed, never served corrupt
        assert result.get(a=5, b=7) == 35
        assert store.verify() == []

    def test_lambda_runner_rejected_before_running(self, tmp_path):
        from repro.store import UnstorableSpecError

        with pytest.raises(UnstorableSpecError):
            sweep({"a": [1]}, lambda a: a, store=str(tmp_path / "store"))

    def test_progress_fires_for_cached_cells(self, tmp_path):
        root = str(tmp_path / "store")
        sweep({"a": [1], "b": [2]}, _counting_cell, store=root)
        seen = []
        sweep(
            {"a": [1], "b": [2]}, _counting_cell, store=root,
            progress=lambda p, o: seen.append((p, o)),
        )
        assert seen == [({"a": 1, "b": 2}, 2)]


class TestExtendedCatalog:
    def test_union_view(self):
        assert set(FULL_CATALOG) >= set(NAS_EXTENDED_CATALOG)
        assert "mg.B" in FULL_CATALOG and "lu.A" in FULL_CATALOG

    def test_extended_entries_runnable(self, tigerton_system):
        app = make_nas_app(tigerton_system, "lu.A", n_threads=4,
                           total_compute_us=20_000)
        app.spawn(cores=[0, 1, 2, 3])
        tigerton_system.run_until_done([app])
        assert app.done

    def test_extended_marked_distinct_from_paper_table(self):
        from repro.apps.workloads import NAS_CATALOG

        assert not (set(NAS_CATALOG) & set(NAS_EXTENDED_CATALOG))
