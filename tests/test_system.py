"""Unit tests for the System orchestrator: spawn, migrate, wake, run."""

import pytest

from repro.balance.base import NoBalancer
from repro.mem.cache_model import CacheModel
from repro.sched.task import Task, TaskState
from repro.system import System
from repro.topology import presets

from tests.test_core_sim import OneShot, pinned_task


def make_system(machine=None, seed=0, **kwargs) -> System:
    system = System(machine or presets.uniform(4), seed=seed, **kwargs)
    system.set_balancer(NoBalancer())
    return system


class TestSpawnBurst:
    def test_burst_shares_stale_snapshot(self):
        """All threads of one burst see pre-burst loads (footnote 1)."""
        system = make_system(presets.uniform(2), seed=0)
        # core 1 busy before the burst
        pre = pinned_task(OneShot(100_000), 1, name="pre")
        system.spawn_burst([pre], at=0)
        burst = [Task(program=OneShot(10_000), name=f"b{i}") for i in range(2)]
        system.spawn_burst(burst, at=1_000)
        system.run(until=2_000)
        # both burst members saw core0=0, core1=1 and picked core 0
        assert all(t.cur_core == 0 or t.last_core == 0 for t in burst)

    def test_spawn_at_future_time(self):
        system = make_system()
        t = pinned_task(OneShot(1_000), 0)
        system.spawn_burst([t], at=5_000)
        system.run()
        assert t.started_at == 5_000
        assert t.finished_at == 6_000

    def test_single_core_affinity_bypasses_balancer(self):
        system = make_system()
        t = pinned_task(OneShot(1_000), 3)
        system.spawn_burst([t])
        system.run(until=100)
        assert t.cur_core == 3

    def test_tasks_registered(self):
        system = make_system()
        ts = [pinned_task(OneShot(1_000), i) for i in range(3)]
        system.spawn_burst(ts)
        system.run(until=10)
        assert set(system.tasks) == set(ts)


class TestMigrate:
    def _runnable_pair(self, system):
        """Two tasks on core 0: one runs, one queues."""
        a = pinned_task(OneShot(100_000), 0, name="a")
        b = Task(program=OneShot(100_000), name="b")
        b.pin({0, 1})
        system.spawn_burst([a, b])
        system.run(until=1_000)
        running = a if a.state == TaskState.RUNNING else b
        queued = b if running is a else a
        return running, queued

    def test_migrate_queued_task(self):
        system = make_system()
        running, queued = self._runnable_pair(system)
        assert system.migrate(queued, 1, reason="test")
        assert queued.cur_core == 1
        assert queued.migrations == 1

    def test_nonforced_refuses_running_task(self):
        system = make_system()
        running, _ = self._runnable_pair(system)
        running.allowed_cores = frozenset({0, 1})
        assert not system.migrate(running, 1, reason="test")
        assert running.cur_core == 0

    def test_forced_moves_running_task(self):
        system = make_system()
        running, _ = self._runnable_pair(system)
        running.allowed_cores = frozenset({0, 1})
        assert system.migrate(running, 1, forced=True, reason="test")
        assert running.cur_core == 1
        # the source core picked up the queued task immediately
        assert system.cores[0].current is not None

    def test_migration_pays_cache_debt(self):
        # tigerton cores 0 and 4 share no cache: full refill cost
        system = make_system(
            presets.tigerton(),
            cache_model=CacheModel(min_cost_us=500.0),
        )
        _, queued = self._runnable_pair(system)
        queued.footprint_bytes = 1 << 20
        queued.allowed_cores = frozenset({0, 4})
        system.migrate(queued, 4, reason="test")
        assert queued.migration_debt_us >= 500.0

    def test_affinity_respected(self):
        system = make_system()
        _, queued = self._runnable_pair(system)  # allowed {0, 1}
        assert not system.migrate(queued, 2, reason="test")

    def test_pin_overrides_affinity(self):
        system = make_system()
        _, queued = self._runnable_pair(system)
        assert system.migrate(queued, 2, forced=True, pin=True, reason="test")
        assert queued.allowed_cores == frozenset({2})

    def test_same_core_is_noop(self):
        system = make_system()
        _, queued = self._runnable_pair(system)
        assert not system.migrate(queued, 0, reason="test")
        assert queued.migrations == 0

    def test_sleeping_task_not_migrated(self):
        system = make_system()
        t = pinned_task(OneShot(1_000), 0)
        t.state = TaskState.SLEEPING
        t.allowed_cores = None
        assert not system.migrate(t, 1, reason="test")

    def test_vruntime_renormalized(self):
        system = make_system()
        _, queued = self._runnable_pair(system)
        system.cores[1].rq.min_vruntime = 1_000_000.0
        before = queued.vruntime
        system.migrate(queued, 1, reason="test")
        # vruntime shifted by the min_vruntime delta between queues
        assert queued.vruntime == pytest.approx(
            before - system.cores[0].rq.min_vruntime + 1_000_000.0
        )

    def test_migration_log_and_counts(self):
        system = make_system()
        _, queued = self._runnable_pair(system)
        system.migrate(queued, 1, reason="unit.test")
        assert system.migration_counts["unit.test"] == 1
        rec = system.migration_log[-1]
        assert rec.src == 0 and rec.dst == 1 and rec.reason == "unit.test"
        assert system.total_migrations() == 1


class TestWakeAndSleep:
    def test_wake_prefers_previous_core(self):
        system = make_system()
        t = Task(program=OneShot(1_000))
        t.state = TaskState.SLEEPING
        t.last_core = 2
        system.tasks.append(t)
        system.wake(t)
        assert t.cur_core == 2

    def test_wake_respects_affinity(self):
        system = make_system()
        t = Task(program=OneShot(1_000))
        t.state = TaskState.SLEEPING
        t.last_core = 2
        t.pin({0})
        system.tasks.append(t)
        system.wake(t)
        assert t.cur_core == 0

    def test_wake_with_latency(self):
        system = make_system()
        t = Task(program=OneShot(1_000))
        t.state = TaskState.SLEEPING
        t.last_core = 0
        system.tasks.append(t)
        system.wake(t, latency_us=500)
        assert t.state == TaskState.SLEEPING
        system.run(until=600)
        assert t.state in (TaskState.RUNNABLE, TaskState.RUNNING)

    def test_double_wake_is_harmless(self):
        system = make_system()
        t = Task(program=OneShot(1_000))
        t.state = TaskState.SLEEPING
        t.last_core = 0
        system.tasks.append(t)
        system.wake(t)
        system.wake(t)  # no-op: already awake
        assert system.cores[0].nr_running == 1

    def test_sleeper_gets_vruntime_credit(self):
        system = make_system()
        system.cores[0].rq.min_vruntime = 100_000.0
        t = Task(program=OneShot(1_000))
        t.state = TaskState.SLEEPING
        t.last_core = 0
        t.vruntime = 0.0
        system.tasks.append(t)
        system.wake(t)
        assert t.vruntime == 100_000.0 - system.cfs_params.sleeper_credit


class TestRunUntilDone:
    def test_stops_when_apps_finish_despite_background(self):
        system = make_system()
        from repro.apps.multiprogram import CpuHog

        hog = CpuHog(system, core=3)
        hog.spawn()
        t = pinned_task(OneShot(10_000), 0)

        class FakeApp:
            tasks = [t]

        system.spawn_burst([t])
        system.run_until_done([FakeApp()])
        assert t.state == TaskState.FINISHED
        assert system.engine.now < 1_000_000  # didn't run to the limit

    def test_limit_raises_on_unfinished(self):
        system = make_system()
        from repro.apps.multiprogram import CpuHog

        hog = CpuHog(system, core=0)  # never finishes
        hog.spawn()

        class FakeApp:
            tasks = [hog.task]

        with pytest.raises(RuntimeError, match="unfinished"):
            system.run_until_done([FakeApp()], limit_us=50_000)

    def test_empty_watch_returns_immediately(self):
        system = make_system()

        class FakeApp:
            tasks = []

        system.run_until_done([FakeApp()])
        assert system.engine.now == 0

    def test_exit_callbacks_fire_once(self):
        system = make_system()
        t = pinned_task(OneShot(1_000), 0)
        calls = []
        system.on_exit(t, lambda task: calls.append(task.tid))
        system.spawn_burst([t])
        system.run()
        assert calls == [t.tid]


class TestIntrospection:
    def test_queue_lengths(self):
        system = make_system()
        ts = [pinned_task(OneShot(50_000), 0) for _ in range(3)]
        system.spawn_burst(ts)
        system.run(until=1_000)
        assert system.queue_lengths()[0] == 3

    def test_tasks_of_app(self):
        system = make_system()
        a = pinned_task(OneShot(1_000), 0, app_id="x")
        b = pinned_task(OneShot(1_000), 1, app_id="y")
        system.spawn_burst([a, b])
        system.run(until=10)
        assert system.tasks_of_app("x") == [a]

    def test_repr(self):
        assert "uniform4" in repr(make_system())
