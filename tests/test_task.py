"""Unit tests for the task model."""

import pytest

from repro.sched.task import (
    Action,
    ActionType,
    Program,
    Task,
    TaskState,
    nice_to_weight,
)


class TestNiceWeights:
    def test_nice_zero_is_1024(self):
        assert nice_to_weight(0) == 1024

    def test_weights_decrease_with_nice(self):
        ws = [nice_to_weight(n) for n in range(-5, 6)]
        assert ws == sorted(ws, reverse=True)

    def test_ratio_about_1_25_per_level(self):
        assert nice_to_weight(1) == pytest.approx(1024 / 1.25, abs=1)

    def test_never_below_one(self):
        assert nice_to_weight(40) >= 1


class TestActions:
    def test_compute_constructor(self):
        a = Action.compute(100)
        assert a.type == ActionType.COMPUTE and a.work_us == 100

    def test_sleep_constructor(self):
        a = Action.sleep(5)
        assert a.type == ActionType.SLEEP and a.sleep_us == 5

    def test_exit_constructor(self):
        assert Action.exit().type == ActionType.EXIT


class TestTaskBasics:
    def test_defaults(self):
        t = Task()
        assert t.state == TaskState.NEW
        assert t.exec_us == 0
        assert t.migrations == 0
        assert t.allowed_cores is None
        assert not t.throttled

    def test_unique_tids(self):
        assert Task().tid != Task().tid

    def test_default_program_exits(self):
        t = Task()
        assert t.program.next_action(t, 0).type == ActionType.EXIT

    def test_name_defaults_to_tid(self):
        t = Task()
        assert str(t.tid) in t.name

    def test_pin_and_can_run_on(self):
        t = Task()
        assert t.can_run_on(7)
        t.pin({1, 2})
        assert t.can_run_on(1) and t.can_run_on(2)
        assert not t.can_run_on(3)

    def test_nice_sets_weight(self):
        assert Task(nice=5).weight < Task(nice=0).weight

    def test_repr_contains_state(self):
        assert "new" in repr(Task())


class TestCacheHot:
    def test_fresh_task_is_cold(self):
        t = Task()
        assert not t.cache_hot(now=10_000_000, hot_window_us=5000)

    def test_recently_descheduled_is_hot(self):
        t = Task()
        t.last_descheduled_at = 1_000_000
        assert t.cache_hot(now=1_003_000, hot_window_us=5000)
        assert not t.cache_hot(now=1_010_000, hot_window_us=5000)

    def test_running_task_always_hot(self):
        t = Task()
        t.state = TaskState.RUNNING
        assert t.cache_hot(now=10**9, hot_window_us=5000)


class TestExecTimeAt:
    def test_not_running_returns_exec_us(self):
        t = Task()
        t.exec_us = 500
        assert t.exec_time_at(10_000) == 500

    def test_running_includes_inflight(self, uniform2):
        system = uniform2
        t = Task()
        t.exec_us = 500
        t.state = TaskState.RUNNING
        core = system.cores[0]
        core.dispatch_started_at = 0
        system.engine.schedule(300, lambda: None)
        system.engine.run()
        assert t.exec_time_at(system.engine.now, core) == 800


class TestProgramHooks:
    def test_hooks_are_noops_by_default(self):
        p = Program()
        t = Task()
        p.on_start(t, 0)
        p.on_exit(t, 0)
        with pytest.raises(NotImplementedError):
            p.next_action(t, 0)
