"""Unit tests for machines, caches and scheduling domains."""

import pytest

from repro.topology import presets
from repro.topology.machine import Core, DomainLevel, Machine


class TestTigerton:
    """Table 1, left column."""

    def setup_method(self):
        self.m = presets.tigerton()

    def test_core_count(self):
        assert self.m.n_cores == 16

    def test_uma(self):
        assert not self.m.numa
        assert all(c.numa_node == 0 for c in self.m.cores)

    def test_four_sockets_of_four(self):
        for s in range(4):
            assert [c.cid for c in self.m.cores if c.socket == s] == list(
                range(4 * s, 4 * s + 4)
            )

    def test_l2_shared_by_pairs(self):
        cache = self.m.shared_cache(0, 1)
        assert cache is not None and cache.level == 2
        assert cache.size_bytes == 4 << 20
        assert self.m.shared_cache(1, 2) is None  # different pair

    def test_memory_per_core(self):
        assert self.m.mem_per_core_bytes == 2 << 30

    def test_global_memory_contention_scope(self):
        assert self.m.mem_contention_scope == "global"
        assert self.m.mem_contention_alpha > 0


class TestBarcelona:
    """Table 1, right column."""

    def setup_method(self):
        self.m = presets.barcelona()

    def test_numa_nodes_are_sockets(self):
        assert self.m.numa
        for c in self.m.cores:
            assert c.numa_node == c.socket == c.cid // 4

    def test_l3_per_socket(self):
        cache = self.m.shared_cache(0, 3)
        assert cache is not None and cache.level == 3
        assert cache.size_bytes == 2 << 20

    def test_l2_private(self):
        # 512K L2 is per core: only the socket L3 is shared
        c = self.m.shared_cache(0, 1)
        assert c is not None and c.level == 3

    def test_node_memory_contention_scope(self):
        assert self.m.mem_contention_scope == "node"


class TestNehalem:
    def setup_method(self):
        self.m = presets.nehalem()

    def test_sixteen_contexts(self):
        assert self.m.n_cores == 16

    def test_smt_siblings_symmetric(self):
        for c in self.m.cores:
            sib = c.smt_sibling
            assert sib is not None
            assert self.m.cores[sib].smt_sibling == c.cid

    def test_smt_derate_below_one(self):
        assert 0 < self.m.smt_derate < 1

    def test_two_numa_nodes(self):
        assert {c.numa_node for c in self.m.cores} == {0, 1}


class TestGenericPresets:
    def test_uniform_core_count(self):
        assert presets.uniform(6).n_cores == 6

    def test_uniform_numa_flag(self):
        m = presets.uniform(8, cores_per_socket=4, numa=True)
        assert m.numa
        assert m.cores[0].numa_node == 0 and m.cores[7].numa_node == 1

    def test_uniform_rejects_ragged_sockets(self):
        with pytest.raises(ValueError):
            presets.uniform(5, cores_per_socket=2)

    def test_asymmetric_clock_factors(self):
        m = presets.asymmetric([1.0, 1.5, 0.5])
        assert [c.clock_factor for c in m.cores] == [1.0, 1.5, 0.5]

    def test_asymmetric_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            presets.asymmetric([1.0, 0.0])


class TestDomains:
    def test_tigerton_domain_chain(self):
        m = presets.tigerton()
        levels = [d.level for d in m.domains_by_core[0]]
        assert levels == [DomainLevel.CACHE, DomainLevel.SOCKET, DomainLevel.MACHINE]

    def test_barcelona_domain_chain(self):
        m = presets.barcelona()
        levels = [d.level for d in m.domains_by_core[0]]
        # L3 spans the socket, so the socket level collapses into CACHE
        assert levels == [DomainLevel.CACHE, DomainLevel.NUMA]

    def test_nehalem_has_smt_domain(self):
        m = presets.nehalem()
        levels = [d.level for d in m.domains_by_core[0]]
        assert levels[0] == DomainLevel.SMT

    def test_root_domain_spans_machine(self):
        m = presets.tigerton()
        assert m.root_domain is not None
        assert m.root_domain.core_ids == tuple(range(16))

    def test_top_groups_are_sockets(self):
        m = presets.tigerton()
        top = m.domains_by_core[0][-1]
        assert top.groups == (
            (0, 1, 2, 3),
            (4, 5, 6, 7),
            (8, 9, 10, 11),
            (12, 13, 14, 15),
        )

    def test_group_of(self):
        m = presets.tigerton()
        top = m.domains_by_core[5][-1]
        assert top.group_of(5) == (4, 5, 6, 7)
        with pytest.raises(KeyError):
            top.group_of(99)

    def test_domain_groups_partition_span(self):
        for m in (presets.tigerton(), presets.barcelona(), presets.nehalem()):
            for chain in m.domains_by_core.values():
                for dom in chain:
                    flat = sorted(c for g in dom.groups for c in g)
                    assert flat == sorted(dom.core_ids)


class TestDomainLevelBetween:
    def test_same_core_is_none(self):
        assert presets.tigerton().domain_level_between(3, 3) is None

    def test_tigerton_levels(self):
        m = presets.tigerton()
        assert m.domain_level_between(0, 1) == DomainLevel.CACHE  # L2 pair
        assert m.domain_level_between(0, 2) == DomainLevel.SOCKET
        assert m.domain_level_between(0, 4) == DomainLevel.MACHINE  # not NUMA!

    def test_barcelona_levels(self):
        m = presets.barcelona()
        assert m.domain_level_between(0, 1) == DomainLevel.CACHE  # socket L3
        assert m.domain_level_between(0, 4) == DomainLevel.NUMA

    def test_nehalem_smt_level(self):
        m = presets.nehalem()
        assert m.domain_level_between(0, 1) == DomainLevel.SMT
        assert m.domain_level_between(0, 2) == DomainLevel.CACHE  # shared L3
        assert m.domain_level_between(0, 8) == DomainLevel.NUMA


class TestMachineValidation:
    def test_core_ids_must_be_dense(self):
        with pytest.raises(ValueError):
            Machine(
                "bad",
                [Core(cid=1, socket=0, numa_node=0)],
                [],
                numa=False,
            )

    def test_bad_contention_scope(self):
        with pytest.raises(ValueError):
            Machine(
                "bad",
                [Core(cid=0, socket=0, numa_node=0)],
                [],
                numa=False,
                mem_contention_scope="bus",
            )

    def test_describe_mentions_caches(self):
        text = presets.tigerton().describe()
        assert "tigerton" in text
        assert "L2" in text

    def test_largest_cache_of(self):
        m = presets.barcelona()
        c = m.largest_cache_of(0)
        assert c is not None and c.level == 3
