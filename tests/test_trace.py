"""Tests for the execution-trace facility."""

import pytest

from repro.apps.barriers import WaitPolicy
from repro.apps.workloads import ep_app
from repro.balance.pinned import PinnedBalancer
from repro.metrics.trace import (
    TraceRecorder,
    TraceTruncatedError,
    ascii_gantt,
    core_utilization,
    task_share,
)
from repro.sched.task import WaitMode
from repro.system import System
from repro.topology import presets


def traced_run(n_cores=2, n_threads=3, work=60_000, mode=WaitMode.YIELD):
    system = System(presets.uniform(n_cores), seed=0, trace=True)
    system.set_balancer(PinnedBalancer())
    app = ep_app(
        system, n_threads=n_threads, total_compute_us=work,
        wait_policy=WaitPolicy(mode=mode),
    )
    app.spawn()
    system.run_until_done([app])
    return system, app


class TestRecorder:
    def test_disabled_by_default(self):
        system = System(presets.uniform(2), seed=0)
        assert system.trace is None

    def test_segments_cover_busy_time(self):
        system, app = traced_run()
        total = sum(s.duration for s in system.trace.segments)
        busy = sum(c.stats.busy_us for c in system.cores)
        assert total == busy

    def test_segment_kinds(self):
        system, app = traced_run(mode=WaitMode.SPIN)
        kinds = {s.kind for s in system.trace.segments}
        assert kinds == {"run", "wait"}

    def test_zero_length_segments_skipped(self):
        tr = TraceRecorder()
        tr.record(1, "t", 0, 100, 100, "run")
        assert tr.segments == []

    def test_limit_drops_excess(self):
        tr = TraceRecorder(limit=2)
        for i in range(5):
            tr.record(1, "t", 0, i * 10, i * 10 + 5, "run")
        assert len(tr.segments) == 2
        assert tr.dropped == 3

    def test_span(self):
        tr = TraceRecorder()
        assert tr.span == (0, 0)
        tr.record(1, "t", 0, 50, 80, "run")
        tr.record(2, "u", 1, 10, 60, "run")
        assert tr.span == (10, 80)


class TestAnalysis:
    def test_core_utilization_bounds(self):
        system, app = traced_run()
        util = core_utilization(system.trace, 2)
        assert len(util) == 2
        assert all(0.0 <= u <= 1.0 for u in util)
        # both cores busy essentially the whole run (yield waiters burn)
        assert min(util) > 0.9

    def test_core_utilization_window(self):
        tr = TraceRecorder()
        tr.record(1, "t", 0, 0, 100, "run")
        util = core_utilization(tr, 2, start=0, end=200)
        assert util == [0.5, 0.0]

    def test_task_share_is_speed_metric(self):
        """task_share over a window reproduces exec/wall."""
        system, app = traced_run(n_cores=1, n_threads=2, work=100_000)
        t = app.tasks[0]
        share = task_share(system.trace, t.tid, 0, 100_000)
        assert share == pytest.approx(0.5, abs=0.1)

    def test_task_share_kind_filter(self):
        system, app = traced_run(mode=WaitMode.SPIN)
        t0, t1, t2 = app.tasks
        lo, hi = system.trace.span
        run = task_share(system.trace, t1.tid, lo, hi, kind="run")
        wait = task_share(system.trace, t1.tid, lo, hi, kind="wait")
        both = task_share(system.trace, t1.tid, lo, hi)
        assert both == pytest.approx(run + wait, abs=1e-9)

    def test_task_share_rejects_empty_window(self):
        with pytest.raises(ValueError):
            task_share(TraceRecorder(), 1, 10, 10)


class TestGantt:
    def test_empty_trace(self):
        assert ascii_gantt(TraceRecorder(), 2) == "(empty trace)"

    def test_rows_and_width(self):
        system, app = traced_run()
        out = ascii_gantt(system.trace, 2, width=40)
        lines = out.splitlines()
        assert len(lines) == 2
        assert all(len(line) == len("core  0 ") + 40 for line in lines)

    def test_wait_rendered_lowercase(self):
        system, app = traced_run(mode=WaitMode.SPIN)
        out = ascii_gantt(system.trace, 2, width=60)
        body = "".join(line.split(None, 2)[2] for line in out.splitlines())
        assert any(c.islower() for c in body if c.isalpha())
        assert any(c.isupper() for c in body if c.isalpha())

    def test_idle_dots(self):
        tr = TraceRecorder()
        tr.record(1, "t", 0, 0, 50, "run")
        out = ascii_gantt(tr, 2, width=10, start=0, end=100)
        core1 = out.splitlines()[1]
        assert core1.endswith("." * 10)


class TestTruncationGuards:
    """A truncated trace must refuse to masquerade as a complete one."""

    def overflowed(self):
        tr = TraceRecorder(limit=1)
        tr.record(1, "a", 0, 0, 100, "run")
        tr.record(2, "b", 1, 0, 100, "run")
        assert tr.truncated
        return tr

    def test_core_utilization_raises(self):
        with pytest.raises(TraceTruncatedError, match="core_utilization"):
            core_utilization(self.overflowed(), n_cores=2)

    def test_task_share_raises(self):
        with pytest.raises(TraceTruncatedError, match="task_share"):
            task_share(self.overflowed(), tid=1, start=0, end=100)

    def test_ascii_gantt_raises(self):
        with pytest.raises(TraceTruncatedError, match="ascii_gantt"):
            ascii_gantt(self.overflowed(), n_cores=2)

    def test_allow_truncated_opt_in(self):
        tr = self.overflowed()
        assert core_utilization(tr, n_cores=2, allow_truncated=True)[0] == 1.0
        assert task_share(tr, tid=1, start=0, end=100, allow_truncated=True) == 1.0
        assert "core  0" in ascii_gantt(tr, n_cores=2, allow_truncated=True)

    def test_migration_overflow_also_counts(self):
        tr = TraceRecorder(limit=1)
        tr.record_migration(0, 1, "a", None, 0, False, "speed.initial")
        tr.record_migration(1, 2, "b", None, 1, False, "speed.initial")
        assert tr.migrations_dropped == 1 and tr.truncated
        with pytest.raises(TraceTruncatedError):
            core_utilization(tr, n_cores=2)

    def test_complete_trace_unaffected(self):
        tr = TraceRecorder()
        tr.record(1, "a", 0, 0, 100, "run")
        assert not tr.truncated
        assert core_utilization(tr, n_cores=1) == [1.0]

    def test_mixed_truncation_caps_are_independent(self):
        """Each record kind truncates against its own cap, not the other's.

        A tight ``migration_limit`` must not eat into segment capacity
        (and vice versa): segments keep recording after migrations hit
        their cap, and the drop counters attribute every loss to the
        right kind.
        """
        tr = TraceRecorder(limit=3, migration_limit=1)
        tr.record_migration(0, 1, "a", None, 0, False, "speed.initial")
        tr.record_migration(1, 2, "b", None, 1, False, "speed.initial")
        assert tr.migrations_dropped == 1 and tr.dropped == 0
        # migrations are full, segments are not: recording continues
        for i in range(3):
            tr.record(1, "a", 0, i * 10, i * 10 + 10, "run")
        assert len(tr.segments) == 3 and tr.dropped == 0
        tr.record(1, "a", 0, 90, 100, "run")
        assert tr.dropped == 1 and len(tr.segments) == 3
        assert len(tr.migrations) == 1
        assert tr.truncated

    def test_segment_cap_does_not_bound_migrations(self):
        tr = TraceRecorder(limit=1, migration_limit=4)
        tr.record(1, "a", 0, 0, 10, "run")
        tr.record(2, "b", 1, 0, 10, "run")
        assert tr.dropped == 1
        for t in range(4):
            tr.record_migration(t, 1, "a", None, 0, False, "speed.initial")
        assert len(tr.migrations) == 4 and tr.migrations_dropped == 0


class TestMigrationEvents:
    def test_recorded_through_system(self):
        from repro.harness.experiment import run_app

        result, system = run_app(
            presets.uniform(2),
            lambda s: ep_app(s, n_threads=3, total_compute_us=60_000),
            balancer="speed",
            cores=2,
            trace=True,
            return_system=True,
        )
        assert system.trace.migrations  # speed.initial placements at least
        ev = system.trace.migrations[0]
        assert ev.dst is not None and ev.task_name
        assert all(
            e.time <= n.time
            for e, n in zip(system.trace.migrations, system.trace.migrations[1:])
        )

    def test_recorder_instance_passthrough(self):
        tr = TraceRecorder(limit=10_000)
        system = System(presets.uniform(2), seed=0, trace=tr)
        assert system.trace is tr
