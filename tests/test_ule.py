"""Unit tests for the FreeBSD ULE migration model."""

import pytest

from repro.balance.ule import UleBalancer
from repro.sched.task import Task
from repro.system import System
from repro.topology import presets

from tests.test_core_sim import OneShot, pinned_task


def ule_system(machine=None, seed=0, **kwargs):
    system = System(machine or presets.uniform(2), seed=seed)
    system.set_balancer(UleBalancer(**kwargs))
    return system


def spawn_imbalanced(system, n_busy, work_us=2_000_000, movable_after=100):
    """n_busy long tasks pinned to core 0, then unpinned."""
    ts = [Task(program=OneShot(work_us), name=f"t{i}") for i in range(n_busy)]
    for t in ts:
        t.pin({0})
    system.spawn_burst(ts)
    system.run(until=movable_after)
    for t in ts:
        t.allowed_cores = None
    return ts


class TestPushMigration:
    def test_push_fixes_improvable_imbalance(self):
        system = ule_system()
        spawn_imbalanced(system, 4, work_us=4_000_000)
        # one thread moves per push period (500 ms): 4v0 -> 3v1 -> 2v2
        system.run(until=1_100_000)
        assert sorted(system.queue_lengths()) == [2, 2]

    def test_default_threshold_ignores_one_task_imbalance(self):
        """'will not migrate threads when a static balance is not
        attainable' (3 tasks, 2 cores)."""
        system = ule_system()
        spawn_imbalanced(system, 3)
        system.run(until=1_200_000)
        # one push happens for 3v0 -> 2v1, then no more
        assert sorted(system.queue_lengths()) == [1, 2]

    def test_steal_thresh_one_bounces_same_victim(self):
        """With kern.sched.steal_thresh=1 the pusher has no migration
        history: it keeps bouncing the most recently migrated thread
        (the hot-potato the paper could not observe benefits from)."""
        system = ule_system(steal_thresh=1)
        ts = spawn_imbalanced(system, 3, work_us=4_000_000)
        system.run(until=3_500_000)
        migs = sorted(t.migrations for t in ts)
        # one thread absorbs nearly all migrations
        assert migs[-1] >= 3
        assert migs[0] <= 1

    def test_push_period_configurable(self):
        fast = ule_system(push_interval_us=50_000)
        spawn_imbalanced(fast, 4)
        fast.run(until=120_000)
        assert sorted(fast.queue_lengths()) == [2, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            UleBalancer(steal_thresh=0)


class TestIdleSteal:
    def test_idle_core_steals(self):
        system = ule_system()
        short = pinned_task(OneShot(5_000), 1, name="short")
        system.spawn_burst([short])
        spawn_imbalanced(system, 2)
        system.run(until=50_000)
        # when short ended, core 1 stole one of the two
        assert sorted(system.queue_lengths()) == [1, 1]
        assert system.kernel_balancer.stats_steals >= 1

    def test_no_steal_of_singleton(self):
        system = ule_system()
        short = pinned_task(OneShot(5_000), 1, name="short")
        solo = Task(program=OneShot(500_000), name="solo")
        solo.pin({0})
        system.spawn_burst([short, solo])
        system.run(until=100)
        solo.allowed_cores = None
        system.run(until=100_000)
        assert solo.cur_core == 0


class TestStats:
    def test_push_counter(self):
        system = ule_system()
        spawn_imbalanced(system, 4)
        system.run(until=600_000)
        assert system.kernel_balancer.stats_pushes >= 1
