"""Unit tests for the NAS workload catalog and co-runners."""

import pytest

from repro.apps.multiprogram import CpuHog, MakeWorkload
from repro.apps.workloads import GB, NAS_CATALOG, ep_app, make_nas_app
from repro.balance.linux import LinuxLoadBalancer
from repro.balance.pinned import PinnedBalancer
from repro.sched.task import TaskState
from repro.system import System
from repro.topology import presets


class TestCatalog:
    def test_table2_members_present(self):
        for name in ("bt.A", "cg.B", "ft.B", "is.C", "sp.A", "ep.C"):
            assert name in NAS_CATALOG

    def test_ft_b_matches_table2(self):
        ft = NAS_CATALOG["ft.B"]
        assert ft.rss_per_core_gb == 5.6
        assert ft.inter_barrier_upc_us == 73_000
        assert ft.inter_barrier_omp_us == 206_000
        assert ft.paper_speedup16_tigerton == 5.3
        assert ft.paper_speedup16_barcelona == 10.5

    def test_cg_b_barrier_every_4ms(self):
        # "cg.B performs barrier synchronization every 4 ms"
        assert NAS_CATALOG["cg.B"].inter_barrier_upc_us == 4_000

    def test_ep_has_no_barriers(self):
        assert NAS_CATALOG["ep.C"].inter_barrier_upc_us is None

    def test_memory_intensity_ordering(self):
        # bandwidth-bound codes above compute-bound ones
        assert NAS_CATALOG["ft.B"].mem_intensity > NAS_CATALOG["sp.A"].mem_intensity
        assert NAS_CATALOG["ep.C"].mem_intensity == 0.0

    def test_footprint_bytes(self):
        assert NAS_CATALOG["ft.B"].footprint_bytes() == int(5.6 * GB)

    def test_flavor_selection(self):
        ft = NAS_CATALOG["ft.B"]
        assert ft.inter_barrier_us("upc") == 73_000
        assert ft.inter_barrier_us("omp") == 206_000


class TestMakeNasApp:
    def setup_method(self):
        self.system = System(presets.tigerton(), seed=0)
        self.system.set_balancer(PinnedBalancer())

    def test_iterations_follow_granularity(self):
        app = make_nas_app(self.system, "cg.B", total_compute_us=100_000)
        assert app.iterations == 25  # 100ms / 4ms
        assert app.work_for(0, 0) == 4_000

    def test_ep_is_single_segment(self):
        app = make_nas_app(self.system, "ep.C", total_compute_us=50_000)
        assert app.iterations == 1
        assert not app.barrier_every_iteration
        assert app.total_work_us() == 16 * 50_000

    def test_threads_inherit_footprint_and_intensity(self):
        app = make_nas_app(self.system, "ft.B")
        t = app.tasks[0]
        assert t.footprint_bytes == NAS_CATALOG["ft.B"].footprint_bytes()
        assert t.mem_intensity == NAS_CATALOG["ft.B"].mem_intensity

    def test_accepts_entry_object(self):
        app = make_nas_app(self.system, NAS_CATALOG["sp.A"])
        assert app.name == "sp.A"

    def test_unknown_bench_raises(self):
        with pytest.raises(KeyError):
            make_nas_app(self.system, "lu.Z")

    def test_runs_to_completion(self):
        app = make_nas_app(self.system, "sp.A", n_threads=4, total_compute_us=20_000)
        app.spawn(cores=[0, 1, 2, 3])
        self.system.run_until_done([app])
        assert app.done


class TestEpApp:
    def test_modified_ep_has_periodic_barriers(self):
        system = System(presets.uniform(2), seed=0)
        system.set_balancer(PinnedBalancer())
        app = ep_app(system, n_threads=2, total_compute_us=10_000, barrier_period_us=1_000)
        assert app.iterations == 10
        assert app.barrier_every_iteration
        app.spawn()
        system.run_until_done([app])
        assert app.barrier.generation == 10


class TestCpuHog:
    def test_hog_monopolizes_half_the_core(self):
        system = System(presets.uniform(2), seed=0)
        system.set_balancer(PinnedBalancer())
        hog = CpuHog(system, core=0)
        hog.spawn()
        app = ep_app(system, n_threads=2, total_compute_us=50_000)
        app.spawn()
        system.run_until_done([app], limit_us=10_000_000)
        # the thread sharing core 0 with the hog runs at half speed
        thread_on_0 = next(t for t in app.tasks if 0 in (t.last_core, t.cur_core))
        assert thread_on_0.finished_at >= 95_000

    def test_hog_is_pinned_and_immortal(self):
        system = System(presets.uniform(2), seed=0)
        system.set_balancer(LinuxLoadBalancer())
        hog = CpuHog(system, core=1)
        hog.spawn()
        system.run(until=500_000)
        assert hog.task.cur_core == 1
        assert hog.task.state in (TaskState.RUNNING, TaskState.RUNNABLE)
        live = hog.task.exec_time_at(system.engine.now, system.cores[1])
        assert live == pytest.approx(500_000, rel=0.01)


class TestMakeWorkload:
    def test_all_jobs_complete(self):
        system = System(presets.uniform(4), seed=3)
        system.set_balancer(LinuxLoadBalancer())
        make = MakeWorkload(system, j=4, jobs=12, mean_job_us=20_000)
        make.spawn()
        system.run(until=5_000_000)
        assert make.done
        assert len(make.tasks) == 12

    def test_waves_respect_j(self):
        system = System(presets.uniform(4), seed=3)
        system.set_balancer(LinuxLoadBalancer())
        make = MakeWorkload(system, j=4, jobs=12, mean_job_us=20_000)
        make.spawn()
        system.run(until=1_000)
        # only the first wave exists so far
        assert len(make.tasks) == 4

    def test_jobs_alternate_compute_and_io(self):
        system = System(presets.uniform(2), seed=5)
        system.set_balancer(LinuxLoadBalancer())
        make = MakeWorkload(system, j=1, jobs=1, mean_job_us=50_000, io_fraction=0.4)
        make.spawn()
        system.run(until=5_000_000)
        job = make.tasks[0]
        assert job.finished_at is not None
        # wall time exceeds exec time because of the I/O sleeps
        assert job.finished_at > job.exec_us * 1.2

    def test_durations_vary_across_seeds(self):
        totals = []
        for seed in (1, 2, 3):
            system = System(presets.uniform(2), seed=seed)
            system.set_balancer(LinuxLoadBalancer())
            make = MakeWorkload(system, j=2, jobs=4, mean_job_us=30_000)
            make.spawn()
            system.run(until=5_000_000)
            totals.append(sum(t.exec_us for t in make.tasks))
        assert len(set(totals)) > 1
